// Deterministic pseudo-random number generation for workload synthesis.
//
// All randomness in the repository flows through this generator so that the
// synthetic Docker-Hub corpus, access sets, and benchmarks are bit-for-bit
// reproducible from a seed (DESIGN.md §7).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/bytes.hpp"

namespace gear {

/// xoshiro256++ PRNG seeded via splitmix64. Not cryptographic; used only for
/// workload generation.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) { reseed(seed); }

  /// Derives a seed from a string label, so independent streams (one per
  /// image series, per version, ...) can be created without coordination.
  static Rng from_label(std::uint64_t base_seed, std::string_view label);

  void reseed(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t next_range(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with probability p of returning true.
  bool next_bool(double p);

  /// Log-uniform size in [lo, hi]: sizes spread evenly across orders of
  /// magnitude, matching the heavy-tailed small-file distribution of
  /// container images (paper §V-B: "files are usually small").
  std::uint64_t next_log_uniform(std::uint64_t lo, std::uint64_t hi);

  /// Fills a byte buffer with pseudo-random data of the given
  /// compressibility in [0,1]: 0 -> fully random (incompressible),
  /// 1 -> highly repetitive.
  Bytes next_bytes(std::size_t n, double compressibility = 0.0);

  /// Zipf-like rank selection over `n` items with exponent `s` — used for
  /// skewed file popularity in access sets.
  std::size_t next_zipf(std::size_t n, double s);

 private:
  std::uint64_t s_[4];
};

}  // namespace gear
