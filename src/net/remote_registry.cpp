#include "net/remote_registry.hpp"

namespace gear::net {

WireMessage RemoteGearRegistry::call(const WireMessage& request,
                                     MessageType expected_type) {
  Bytes frame = encode_message(request);
  for (int attempt = 0; attempt < max_attempts_; ++attempt) {
    if (attempt > 0) ++stats_.retries;
    ++stats_.requests;
    Bytes response_frame = transport_.round_trip(frame);
    StatusOr<WireMessage> response = decode_message(response_frame);
    if (!response.ok()) {
      ++stats_.integrity_failures;
      continue;  // damaged or dropped: retry
    }
    if (response->type != expected_type || response->fp != request.fp) {
      ++stats_.integrity_failures;
      continue;  // cross-wired response: retry
    }
    if (response->status == Status::kServerError) {
      continue;
    }
    return std::move(response).value();
  }
  throw_error(ErrorCode::kInternal,
              "remote registry unreachable after " +
                  std::to_string(max_attempts_) + " attempts");
}

bool RemoteGearRegistry::query(const Fingerprint& fp) {
  WireMessage request;
  request.type = MessageType::kQueryRequest;
  request.fp = fp;
  WireMessage response = call(request, MessageType::kQueryResponse);
  return response.status == Status::kExists;
}

bool RemoteGearRegistry::upload(const Fingerprint& fp, BytesView content) {
  WireMessage request;
  request.type = MessageType::kUploadRequest;
  request.fp = fp;
  request.payload.assign(content.begin(), content.end());
  WireMessage response = call(request, MessageType::kUploadResponse);
  return response.status == Status::kOk;
}

StatusOr<Bytes> RemoteGearRegistry::download(const Fingerprint& fp) {
  WireMessage request;
  request.type = MessageType::kDownloadRequest;
  request.fp = fp;

  for (int attempt = 0; attempt < max_attempts_; ++attempt) {
    WireMessage response = call(request, MessageType::kDownloadResponse);
    if (response.status == Status::kNotFound) {
      return {ErrorCode::kNotFound, "remote: no such file: " + fp.hex()};
    }
    // End-to-end verification: the content must hash back to the requested
    // fingerprint (the CRC guards the frame; this guards the server).
    if (!verify_content_ || hasher_.fingerprint(response.payload) == fp) {
      return std::move(response.payload);
    }
    ++stats_.integrity_failures;
  }
  return {ErrorCode::kCorruptData,
          "remote: content repeatedly failed fingerprint check: " + fp.hex()};
}

}  // namespace gear::net
