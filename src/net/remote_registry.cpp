#include "net/remote_registry.hpp"

#include <numeric>

#include "compress/codec.hpp"

namespace gear::net {

WireMessage RemoteGearRegistry::call(const WireMessage& request,
                                     MessageType expected_type) const {
  Bytes frame = encode_message(request);
  for (int attempt = 0; attempt < max_attempts_; ++attempt) {
    if (attempt > 0) ++stats_.retries;
    ++stats_.requests;
    Bytes response_frame = transport_.round_trip(frame);
    StatusOr<WireMessage> response = decode_message(response_frame);
    if (!response.ok()) {
      ++stats_.integrity_failures;
      continue;  // damaged or dropped: retry the frame whole
    }
    if (response->type != expected_type || response->fp != request.fp) {
      ++stats_.integrity_failures;
      continue;  // cross-wired response: retry
    }
    if (response->status == Status::kServerError) {
      continue;
    }
    return std::move(response).value();
  }
  throw_error(ErrorCode::kInternal,
              "remote registry unreachable after " +
                  std::to_string(max_attempts_) + " attempts");
}

bool RemoteGearRegistry::query(const Fingerprint& fp) const {
  WireMessage request;
  request.type = MessageType::kQueryRequest;
  request.fp = fp;
  WireMessage response = call(request, MessageType::kQueryResponse);
  return response.status == Status::kExists;
}

std::vector<std::uint8_t> RemoteGearRegistry::query_many(
    const std::vector<Fingerprint>& fps) const {
  if (fps.empty()) return {};
  WireMessage request;
  request.type = MessageType::kQueryManyRequest;
  request.items.resize(fps.size());
  for (std::size_t i = 0; i < fps.size(); ++i) request.items[i].fp = fps[i];

  // call() guards the frame; this loop guards the item list (count and
  // fingerprint echo must mirror the request).
  for (int attempt = 0; attempt < max_attempts_; ++attempt) {
    WireMessage response = call(request, MessageType::kQueryManyResponse);
    bool echo_ok = response.items.size() == fps.size();
    for (std::size_t i = 0; echo_ok && i < fps.size(); ++i) {
      echo_ok = response.items[i].fp == fps[i];
    }
    if (!echo_ok) {
      ++stats_.integrity_failures;
      continue;
    }
    std::vector<std::uint8_t> out(fps.size());
    for (std::size_t i = 0; i < fps.size(); ++i) {
      out[i] = response.items[i].status == Status::kExists ? 1 : 0;
    }
    return out;
  }
  throw_error(ErrorCode::kInternal,
              "remote: query batch repeatedly malformed after " +
                  std::to_string(max_attempts_) + " attempts");
}

bool RemoteGearRegistry::upload(const Fingerprint& fp, BytesView content) {
  WireMessage request;
  request.type = MessageType::kUploadRequest;
  request.fp = fp;
  request.payload.assign(content.begin(), content.end());
  WireMessage response = call(request, MessageType::kUploadResponse);
  return response.status == Status::kOk;
}

bool RemoteGearRegistry::upload_precompressed(const Fingerprint& fp,
                                              Bytes compressed) {
  std::vector<std::pair<Fingerprint, Bytes>> one;
  one.emplace_back(fp, std::move(compressed));
  return upload_precompressed_batch(std::move(one)) == 1;
}

std::size_t RemoteGearRegistry::upload_precompressed_batch(
    std::vector<std::pair<Fingerprint, Bytes>> items) {
  if (items.empty()) return 0;
  WireMessage request;
  request.type = MessageType::kUploadManyRequest;
  request.items.resize(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    request.items[i].fp = items[i].first;
    request.items[i].payload = std::move(items[i].second);
  }

  for (int attempt = 0; attempt < max_attempts_; ++attempt) {
    WireMessage response = call(request, MessageType::kUploadManyResponse);
    bool echo_ok = response.items.size() == request.items.size();
    for (std::size_t i = 0; echo_ok && i < request.items.size(); ++i) {
      echo_ok = response.items[i].fp == request.items[i].fp;
    }
    if (!echo_ok) {
      ++stats_.integrity_failures;
      continue;
    }
    std::size_t stored = 0;
    for (const WireItem& item : response.items) {
      if (item.status == Status::kOk) ++stored;
    }
    return stored;
  }
  throw_error(ErrorCode::kInternal,
              "remote: upload batch repeatedly malformed after " +
                  std::to_string(max_attempts_) + " attempts");
}

StatusOr<Bytes> RemoteGearRegistry::download(const Fingerprint& fp) const {
  WireMessage request;
  request.type = MessageType::kDownloadRequest;
  request.fp = fp;

  for (int attempt = 0; attempt < max_attempts_; ++attempt) {
    WireMessage response = call(request, MessageType::kDownloadResponse);
    if (response.status == Status::kNotFound) {
      return {ErrorCode::kNotFound, "remote: no such file: " + fp.hex()};
    }
    // End-to-end verification: the content must hash back to the requested
    // fingerprint (the CRC guards the frame; this guards the server).
    if (!verify_content_ || hasher_.fingerprint(response.payload) == fp) {
      return std::move(response.payload);
    }
    ++stats_.integrity_failures;
  }
  return {ErrorCode::kCorruptData,
          "remote: content repeatedly failed fingerprint check: " + fp.hex()};
}

StatusOr<std::vector<Bytes>> RemoteGearRegistry::download_batch(
    const std::vector<Fingerprint>& fps, util::ThreadPool* pool,
    std::uint64_t* wire_bytes_out) const {
  std::vector<Bytes> out(fps.size());
  std::uint64_t wire = 0;
  if (fps.empty()) {
    if (wire_bytes_out != nullptr) *wire_bytes_out = 0;
    return out;
  }

  // Indices of fps still outstanding. The first round asks for everything;
  // later rounds refetch only the items that failed verification inside an
  // otherwise intact frame (partial retry — the CRC protects the frame,
  // fingerprints protect each item).
  std::vector<std::size_t> pending(fps.size());
  std::iota(pending.begin(), pending.end(), std::size_t{0});

  for (int round = 0; round < max_attempts_ && !pending.empty(); ++round) {
    WireMessage request;
    request.type = MessageType::kDownloadManyRequest;
    request.items.resize(pending.size());
    for (std::size_t i = 0; i < pending.size(); ++i) {
      request.items[i].fp = fps[pending[i]];
    }
    WireMessage response = call(request, MessageType::kDownloadManyResponse);
    if (response.items.size() != pending.size()) {
      ++stats_.integrity_failures;
      continue;  // malformed item list: ask for the whole remainder again
    }

    // Serial pass: per-item status and fingerprint echo. kNotFound is an
    // answer, not a transmission fault — fail the batch naming the file.
    for (std::size_t i = 0; i < pending.size(); ++i) {
      if (response.items[i].status == Status::kNotFound &&
          response.items[i].fp == fps[pending[i]]) {
        return {ErrorCode::kNotFound,
                "remote: no such file: " + fps[pending[i]].hex()};
      }
    }

    // Decompress + verify each item; independent per item, so this is the
    // one phase allowed on the pool. Results land by slot — deterministic
    // at any pool width.
    std::vector<Bytes> contents(pending.size());
    std::vector<std::uint8_t> good(pending.size(), 0);
    auto check_one = [&](std::size_t i) {
      const WireItem& item = response.items[i];
      if (item.fp != fps[pending[i]] || item.status != Status::kOk) return;
      try {
        Bytes content = decompress(item.payload);
        if (verify_content_ && hasher_.fingerprint(content) != item.fp) return;
        contents[i] = std::move(content);
        good[i] = 1;
      } catch (const Error&) {
        // corrupt compressed frame: leave the slot bad for refetch
      }
    };
    if (pool != nullptr) {
      pool->parallel_for_each(pending.size(), check_one);
    } else {
      for (std::size_t i = 0; i < pending.size(); ++i) check_one(i);
    }

    // Serial accounting pass: accepted items place and bill; failed ones
    // queue for an item-granular refetch.
    std::vector<std::size_t> still;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      if (good[i] != 0) {
        wire += response.items[i].payload.size();
        out[pending[i]] = std::move(contents[i]);
      } else {
        ++stats_.integrity_failures;
        still.push_back(pending[i]);
      }
    }
    pending = std::move(still);
    if (!pending.empty() && round + 1 < max_attempts_) {
      stats_.item_refetches += pending.size();
    }
  }

  if (!pending.empty()) {
    return {ErrorCode::kCorruptData,
            "remote: " + std::to_string(pending.size()) +
                " item(s) repeatedly failed fingerprint check, first: " +
                fps[pending.front()].hex()};
  }
  if (wire_bytes_out != nullptr) *wire_bytes_out = wire;
  return out;
}

const std::optional<ChunkManifest>& RemoteGearRegistry::probe_manifest(
    const Fingerprint& fp) const {
  {
    std::lock_guard guard(manifest_mutex_);
    auto it = manifest_cache_.find(fp);
    // References into the map stay valid: entries are never erased, and
    // unordered_map rehashing moves buckets, not elements.
    if (it != manifest_cache_.end()) return it->second;
  }

  WireMessage request;
  request.type = MessageType::kDownloadChunksRequest;
  request.fp = fp;
  request.payload = encode_chunk_index_list({});  // empty list = probe

  std::optional<ChunkManifest> probed;
  bool resolved = false;
  for (int attempt = 0; attempt < max_attempts_ && !resolved; ++attempt) {
    WireMessage response = call(request, MessageType::kDownloadChunksResponse);
    if (response.status == Status::kNotFound) {
      // Stored plain, or not stored at all: either way, not chunked.
      resolved = true;
      break;
    }
    try {
      probed = ChunkManifest::parse(response.payload);
      resolved = true;
    } catch (const Error&) {
      ++stats_.integrity_failures;  // CRC-intact frame, garbled manifest
    }
  }
  if (!resolved) {
    throw_error(ErrorCode::kCorruptData,
                "remote: manifest probe repeatedly garbled for " + fp.hex());
  }

  std::lock_guard guard(manifest_mutex_);
  // A concurrent prober may have landed first; try_emplace keeps its answer.
  return manifest_cache_.try_emplace(fp, std::move(probed)).first->second;
}

bool RemoteGearRegistry::is_chunked(const Fingerprint& fp) const {
  return probe_manifest(fp).has_value();
}

StatusOr<ChunkManifest> RemoteGearRegistry::chunk_manifest(
    const Fingerprint& fp) const {
  const std::optional<ChunkManifest>& probed = probe_manifest(fp);
  if (!probed.has_value()) {
    return {ErrorCode::kNotFound, "remote: no chunk manifest for " + fp.hex()};
  }
  return *probed;
}

StatusOr<std::vector<Bytes>> RemoteGearRegistry::download_chunks(
    const Fingerprint& fp, const ChunkManifest& manifest,
    const std::vector<std::uint32_t>& indices,
    std::uint64_t* wire_bytes_out) const {
  std::vector<Bytes> out(indices.size());
  std::uint64_t wire = 0;
  if (indices.empty()) {
    if (wire_bytes_out != nullptr) *wire_bytes_out = 0;
    return out;
  }
  for (std::uint32_t index : indices) {
    if (index >= manifest.chunks.size()) {
      return {ErrorCode::kInvalidArgument,
              "download_chunks: chunk index " + std::to_string(index) +
                  " out of range for " + fp.hex()};
    }
  }

  // Same two-level retry shape as download_batch: the first round asks for
  // every chunk in one frame; later rounds refetch only the items that
  // failed verification inside an otherwise intact frame.
  std::vector<std::size_t> pending(indices.size());
  std::iota(pending.begin(), pending.end(), std::size_t{0});

  for (int round = 0; round < max_attempts_ && !pending.empty(); ++round) {
    std::vector<std::uint32_t> ask(pending.size());
    for (std::size_t i = 0; i < pending.size(); ++i) {
      ask[i] = indices[pending[i]];
    }
    WireMessage request;
    request.type = MessageType::kDownloadChunksRequest;
    request.fp = fp;
    request.payload = encode_chunk_index_list(ask);
    WireMessage response = call(request, MessageType::kDownloadChunksResponse);
    if (response.status == Status::kNotFound && response.items.empty()) {
      return {ErrorCode::kNotFound,
              "remote: not stored chunked: " + fp.hex()};
    }
    if (response.items.size() != pending.size()) {
      ++stats_.integrity_failures;
      continue;  // malformed item list: ask for the whole remainder again
    }

    // Serial pass: a per-item kNotFound with the correct fingerprint echo
    // is an answer — the chunk object is missing server-side.
    for (std::size_t i = 0; i < pending.size(); ++i) {
      if (response.items[i].status == Status::kNotFound &&
          response.items[i].fp == manifest.chunks[ask[i]]) {
        return {ErrorCode::kNotFound,
                "remote: missing chunk " + std::to_string(ask[i]) + " of " +
                    fp.hex()};
      }
    }

    std::vector<std::size_t> still;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      const WireItem& item = response.items[i];
      const Fingerprint& want = manifest.chunks[ask[i]];
      bool good = false;
      Bytes content;
      if (item.fp == want && item.status == Status::kOk) {
        try {
          content = decompress(item.payload);
          good = !verify_content_ || hasher_.fingerprint(content) == want;
        } catch (const Error&) {
          // corrupt compressed frame: leave the slot bad for refetch
        }
      }
      if (good) {
        wire += item.payload.size();
        out[pending[i]] = std::move(content);
      } else {
        ++stats_.integrity_failures;
        still.push_back(pending[i]);
      }
    }
    pending = std::move(still);
    if (!pending.empty() && round + 1 < max_attempts_) {
      stats_.item_refetches += pending.size();
    }
  }

  if (!pending.empty()) {
    return {ErrorCode::kCorruptData,
            "remote: " + std::to_string(pending.size()) +
                " chunk(s) repeatedly failed fingerprint check, first index " +
                std::to_string(indices[pending.front()]) + " of " + fp.hex()};
  }
  if (wire_bytes_out != nullptr) *wire_bytes_out = wire;
  return out;
}

StatusOr<std::uint64_t> RemoteGearRegistry::stored_size(
    const Fingerprint& fp) const {
  WireMessage request;
  request.type = MessageType::kQueryManyRequest;
  request.items.resize(1);
  request.items[0].fp = fp;

  for (int attempt = 0; attempt < max_attempts_; ++attempt) {
    WireMessage response = call(request, MessageType::kQueryManyResponse);
    if (response.items.size() != 1 || response.items[0].fp != fp) {
      ++stats_.integrity_failures;
      continue;
    }
    const WireItem& item = response.items[0];
    if (item.status != Status::kExists) {
      return {ErrorCode::kNotFound, "remote: no such file: " + fp.hex()};
    }
    if (item.payload.empty()) {
      return {ErrorCode::kUnsupported,
              "remote: server did not advertise a stored size"};
    }
    std::size_t pos = 0;
    return get_varint(item.payload, pos);
  }
  return {ErrorCode::kInternal,
          "remote: size query repeatedly malformed for " + fp.hex()};
}

}  // namespace gear::net
