// Real TCP socket transport: the batched wire protocol between two OS
// processes, without changing a byte of the frame format.
//
//  * TcpServer    — accepts connections and serves length-prefixed GWP1
//    frames off a shared FrameServer: the same dispatch (and the same
//    LoopbackServerStats) as the in-process loopback path, behind a real
//    socket. One connection per client, served on the server's thread pool.
//  * TcpTransport — the client half: a net::Transport whose round_trip
//    writes the request frame down one persistent connection and reads the
//    response back, with connect/IO timeouts and bounded
//    reconnect-with-backoff on broken connections. Retrying a frame after a
//    reconnect is safe because every wire message is an idempotent
//    request/response — re-executing a query/upload/download yields the
//    same answer.
//
// Transport-level failures never throw: after exhausting its attempts,
// round_trip returns an empty frame (a dropped response), exactly what
// DownTransport produces — the RemoteGearRegistry stub's retry ladder turns
// persistent ones into clean errors. This keeps failure semantics identical
// between the simulated and real paths.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "net/frame_server.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace gear::net {

/// A parsed "host:port" endpoint.
struct HostPort {
  std::string host;
  std::uint16_t port = 0;

  friend bool operator==(const HostPort&, const HostPort&) = default;
};

/// Parses "host:port". kInvalidArgument on a missing/empty host, a
/// missing/non-numeric port, or a port above 65535. Port 0 parses (a server
/// may bind ephemeral); callers dialing out should reject it themselves.
StatusOr<HostPort> parse_host_port(const std::string& spec);

/// Serves a FrameServer over real TCP. Lifecycle is start() once, stop()
/// once (also run by the destructor); the accept loop runs on a dedicated
/// thread and each accepted connection is served by a task on the
/// connection pool, so at most `max_clients` clients are served
/// concurrently (further accepts queue). Frames larger than
/// `max_frame_bytes` — and peers that go mute mid-frame for longer than
/// `io_timeout_ms` — get their connection dropped; the client's retry
/// ladder takes it from there.
class TcpServer {
 public:
  struct Options {
    /// Width of the connection-serving pool (min 2 so a lone slow client
    /// can never pin the accept path).
    std::size_t max_clients = 8;
    std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
    /// Ceiling on mid-frame silence (reading the rest of a started frame /
    /// writing a response). Waiting for a new request on an idle
    /// connection is unbounded.
    int io_timeout_ms = 10'000;
  };

  explicit TcpServer(FrameServer& frames) : TcpServer(frames, Options{}) {}
  TcpServer(FrameServer& frames, Options options);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds `host:port` (port 0 = kernel-assigned, read it back via port()),
  /// listens, and starts accepting. Throws Error(kInternal) when the
  /// address cannot be resolved or bound.
  void start(const std::string& host, std::uint16_t port);

  /// The bound port (valid after start()).
  std::uint16_t port() const noexcept { return port_; }

  /// Stops accepting, wakes every connection, and joins all serving
  /// threads. Idempotent.
  void stop();

  bool running() const noexcept { return started_ && !stopped_; }

  std::uint64_t connections_accepted() const noexcept {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  std::uint64_t frames_served() const noexcept {
    return frames_served_.load(std::memory_order_relaxed);
  }
  /// Connections dropped for protocol violations (zero-length or oversized
  /// length prefix).
  std::uint64_t frames_rejected() const noexcept {
    return frames_rejected_.load(std::memory_order_relaxed);
  }

 private:
  void accept_loop();
  void serve_connection(int fd);

  FrameServer& frames_;
  Options options_;
  util::ThreadPool pool_;

  std::atomic<int> listen_fd_{-1};
  std::uint16_t port_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;

  std::mutex clients_mutex_;
  std::unordered_set<int> client_fds_;
  std::vector<std::future<void>> connection_tasks_;

  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> frames_served_{0};
  std::atomic<std::uint64_t> frames_rejected_{0};
};

/// Client side of the socket path. One persistent connection, dialed
/// lazily on the first round_trip and redialed (bounded attempts,
/// exponential backoff) whenever the peer breaks it — a server restart
/// mid-workload heals transparently. round_trip is serialized under an
/// internal mutex so one stub instance may be shared by concurrent client
/// threads, exactly like the loopback transport.
class TcpTransport final : public Transport {
 public:
  struct Options {
    int connect_timeout_ms = 2'000;
    /// Ceiling on waiting for the response to a sent request.
    int io_timeout_ms = 10'000;
    /// Dial/IO attempts per round_trip before giving up (returning the
    /// empty "dropped response" frame).
    int max_attempts = 8;
    int backoff_initial_ms = 10;
    int backoff_max_ms = 500;
    std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  };

  TcpTransport(std::string host, std::uint16_t port)
      : TcpTransport(std::move(host), port, Options{}) {}
  TcpTransport(std::string host, std::uint16_t port, Options options);
  ~TcpTransport() override { close(); }

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  Bytes round_trip(BytesView request_frame) override;

  /// Drops the connection; the next round_trip redials.
  void close();

  bool connected() const;
  /// Successful dials after the first (how many times the link healed).
  std::uint64_t reconnects() const noexcept {
    return reconnects_.load(std::memory_order_relaxed);
  }
  /// Send/receive failures and timeouts that cost a connection.
  std::uint64_t io_errors() const noexcept {
    return io_errors_.load(std::memory_order_relaxed);
  }

 private:
  bool connect_locked();
  void close_locked();

  std::string host_;
  std::uint16_t port_;
  Options options_;

  mutable std::mutex mutex_;
  int fd_ = -1;
  bool ever_connected_ = false;
  std::atomic<std::uint64_t> reconnects_{0};
  std::atomic<std::uint64_t> io_errors_{0};
};

}  // namespace gear::net
