// Transport-agnostic server half of the wire protocol.
//
// FrameServer turns one request frame into one response frame: decode,
// dispatch against a FileRegistryApi (a single GearRegistry or a whole
// FleetRegistry of shards), encode, account. It knows nothing about HOW
// frames travel — LoopbackTransport hands them over in-process (optionally
// charging a simulated link) and net::TcpServer reads them off real
// sockets; both paths share this exact dispatch, which is what makes the
// loopback link the deterministic twin of the socket path: same frames in,
// same frames and server stats out, byte for byte.
#pragma once

#include <atomic>
#include <cstdint>

#include "gear/registry_api.hpp"
#include "net/wire.hpp"

namespace gear::net {

/// Server-side accounting of a frame-served registry endpoint. One serve()
/// call is one round trip, whatever it carries; the *_items counters expose
/// how many objects each interface served, so tests can prove an N-file
/// deploy cost ⌈N/batch⌉ download round-trips instead of N. Fields are
/// atomics so concurrent clients account race-free; read them as plain
/// numbers. (The name predates the socket transport: these are the stats of
/// ANY FrameServer, loopback- or TCP-fronted.)
struct LoopbackServerStats {
  std::atomic<std::uint64_t> round_trips{0};
  std::atomic<std::uint64_t> bad_requests{0};  // undecodable request frames
  std::atomic<std::uint64_t> query_round_trips{0};
  std::atomic<std::uint64_t> query_items{0};
  std::atomic<std::uint64_t> upload_round_trips{0};
  std::atomic<std::uint64_t> upload_items{0};
  std::atomic<std::uint64_t> download_round_trips{0};
  std::atomic<std::uint64_t> download_items{0};
  /// kDownloadChunks traffic: manifest probes (empty index list) and chunk
  /// batches are counted apart so tests can prove a range read over N
  /// cache-missing chunks cost 1 probe + ⌈N/batch⌉ chunk frames.
  std::atomic<std::uint64_t> manifest_round_trips{0};
  std::atomic<std::uint64_t> chunk_round_trips{0};
  std::atomic<std::uint64_t> chunk_items{0};
  std::atomic<std::uint64_t> bytes_in{0};   // request frame bytes
  std::atomic<std::uint64_t> bytes_out{0};  // response frame bytes
};

/// Serves serve() concurrently: the registry backends are internally
/// locked and the stats are atomics, so every transport may dispatch from
/// any number of threads at once.
class FrameServer {
 public:
  /// Non-owning: `files` must outlive the server.
  explicit FrameServer(FileRegistryApi& files) : files_(files) {}

  /// Answers one request frame with one response frame. An undecodable
  /// request is answered (kServerError), never thrown. Registry-side
  /// exceptions propagate to the caller — in-process transports surface
  /// them to the client directly; socket fronts catch and answer
  /// kServerError (see TcpServer). `n_items_out` (optional) receives the
  /// number of objects the response carries (1 for single messages), so a
  /// link-charging transport can bill batch responses as pipelined bursts.
  Bytes serve(BytesView request_frame, std::uint64_t* n_items_out = nullptr);

  FileRegistryApi& files() noexcept { return files_; }
  const LoopbackServerStats& stats() const noexcept { return stats_; }

 private:
  FileRegistryApi& files_;
  LoopbackServerStats stats_;
};

}  // namespace gear::net
