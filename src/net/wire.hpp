// Wire protocol for the Gear Registry's three interfaces.
//
// The paper's components "communicate with each other via HTTP" (§IV) with
// three operations against the file server: query, upload, download. This
// module defines the message framing those calls travel in:
//
//   magic "GWP1" | type u8 | status u8 | fingerprint 16B |
//   payload varint-length + bytes | crc32 of everything before it
//
// Batch messages (kQueryMany / kUploadMany / kDownloadMany) extend the same
// frame with a varint-counted item list between the payload and the CRC:
//
//   ... payload | item-count varint |
//   item := fingerprint 16B | status u8 | payload varint-length + bytes |
//   ... | crc32
//
// One batch frame answers many fingerprints, so a bulk fetch pays one
// round-trip per batch instead of one per file (the deploy-time lever of
// §III-C / Fig. 9). The trailing CRC still covers the whole frame: a frame
// damaged in transit is retransmitted whole, while per-item *content*
// integrity is verified end-to-end by fingerprints, letting the client
// refetch only the damaged items of an otherwise intact batch. decode
// rejects anything malformed with kCorruptData, which the client stub turns
// into retries.
//
// Chunk messages (kDownloadChunks) do for partial reads of one chunked file
// what kDownloadMany does for whole files. The request's top-level
// fingerprint names the chunked file and its payload is a varint-counted
// list of chunk indices (encode_chunk_index_list); an empty list is a
// manifest probe. The response answers index i with items[i]: the chunk's
// own fingerprint (from the server's manifest), a per-chunk status, and the
// stored compressed chunk frame; a manifest probe's response instead
// carries the serialized manifest as its top-level payload.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.hpp"
#include "util/error.hpp"
#include "util/fingerprint.hpp"

namespace gear::net {

enum class MessageType : std::uint8_t {
  kQueryRequest = 1,
  kQueryResponse = 2,
  kUploadRequest = 3,
  kUploadResponse = 4,
  kDownloadRequest = 5,
  kDownloadResponse = 6,
  kQueryManyRequest = 7,
  kQueryManyResponse = 8,
  kUploadManyRequest = 9,
  kUploadManyResponse = 10,
  kDownloadManyRequest = 11,
  kDownloadManyResponse = 12,
  kDownloadChunksRequest = 13,
  kDownloadChunksResponse = 14,
};

enum class Status : std::uint8_t {
  kOk = 0,
  kNotFound = 1,
  kExists = 2,      // query hit / upload deduplicated
  kServerError = 3,
};

/// True for the *Many message types, whose frames carry an item list.
bool is_batch_type(MessageType type);

/// One entry of a batch message. In requests the status is ignored; in
/// responses it is the per-item outcome. Download-response payloads are the
/// stored compressed (GZC1) object; upload-request payloads likewise carry
/// precompressed frames, so the bytes on the wire equal the bytes stored.
struct WireItem {
  Fingerprint fp;
  Status status = Status::kOk;
  Bytes payload;

  friend bool operator==(const WireItem&, const WireItem&) = default;
};

struct WireMessage {
  MessageType type = MessageType::kQueryRequest;
  Status status = Status::kOk;
  Fingerprint fp;
  Bytes payload;  // upload request content / download response content
  /// Batch entries; encoded only for is_batch_type(type) messages.
  std::vector<WireItem> items;

  friend bool operator==(const WireMessage&, const WireMessage&) = default;
};

/// Encodes a message into a checksummed frame.
Bytes encode_message(const WireMessage& message);

/// Decodes a frame; returns kCorruptData for bad magic, bad CRC, truncation,
/// unknown type/status, bad item list, or trailing garbage.
StatusOr<WireMessage> decode_message(BytesView frame);

/// Stream framing for socket transports. A GWP1 frame is not
/// self-delimiting on a byte stream, so TCP peers exchange every frame
/// behind a 4-byte little-endian length prefix. The prefix is transport
/// framing, not part of the wire format — in-process transports hand frames
/// over whole and never see it, which is why the TCP path stays
/// byte-identical at the frame level.
constexpr std::size_t kFrameHeaderBytes = 4;

/// Ceiling a peer enforces on the length prefix before allocating: a frame
/// longer than this is a protocol violation (or memory bomb) and the
/// connection is dropped.
constexpr std::size_t kDefaultMaxFrameBytes = std::size_t{256} << 20;

/// Writes the length prefix for a `frame_len`-byte frame.
void put_frame_length(std::uint8_t (&header)[kFrameHeaderBytes],
                      std::uint64_t frame_len);

/// Reads a length prefix written by put_frame_length.
std::uint32_t get_frame_length(const std::uint8_t (&header)[kFrameHeaderBytes]);

/// Payload codec for kDownloadChunksRequest: varint count, then one varint
/// per chunk index.
Bytes encode_chunk_index_list(const std::vector<std::uint32_t>& indices);

/// Inverse of encode_chunk_index_list; kCorruptData on truncation, trailing
/// garbage, or an index that overflows 32 bits.
StatusOr<std::vector<std::uint32_t>> decode_chunk_index_list(BytesView payload);

}  // namespace gear::net
