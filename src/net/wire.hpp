// Wire protocol for the Gear Registry's three interfaces.
//
// The paper's components "communicate with each other via HTTP" (§IV) with
// three operations against the file server: query, upload, download. This
// module defines the message framing those calls travel in:
//
//   magic "GWP1" | type u8 | status u8 | fingerprint 16B |
//   payload varint-length + bytes | crc32 of everything before it
//
// The trailing CRC detects frames damaged in transit; content *identity*
// is still verified end-to-end by fingerprints. decode rejects anything
// malformed with kCorruptData, which the client stub turns into retries.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"
#include "util/error.hpp"
#include "util/fingerprint.hpp"

namespace gear::net {

enum class MessageType : std::uint8_t {
  kQueryRequest = 1,
  kQueryResponse = 2,
  kUploadRequest = 3,
  kUploadResponse = 4,
  kDownloadRequest = 5,
  kDownloadResponse = 6,
};

enum class Status : std::uint8_t {
  kOk = 0,
  kNotFound = 1,
  kExists = 2,      // query hit / upload deduplicated
  kServerError = 3,
};

struct WireMessage {
  MessageType type = MessageType::kQueryRequest;
  Status status = Status::kOk;
  Fingerprint fp;
  Bytes payload;  // upload request content / download response content

  friend bool operator==(const WireMessage&, const WireMessage&) = default;
};

/// Encodes a message into a checksummed frame.
Bytes encode_message(const WireMessage& message);

/// Decodes a frame; returns kCorruptData for bad magic, bad CRC, truncation,
/// unknown type/status, or trailing garbage.
StatusOr<WireMessage> decode_message(BytesView frame);

}  // namespace gear::net
