// Client stub for a Gear Registry reached over a Transport.
//
// Presents the FileRegistryApi surface while framing every call through the
// wire protocol, so GearClient and push_gear_image deploy over a network
// boundary with the exact code they use in-process. Responses that fail
// integrity checking (bad CRC, truncation, drops) are retried up to a
// bounded number of attempts — transient transmission faults must not
// surface to the deployment path; persistent ones become errors.
//
// Batch calls (query_many / download_batch / upload_precompressed_batch)
// move one frame per batch instead of one per file. Retry granularity is
// two-level: a frame that fails decode is retransmitted whole (stats_
// .retries), while a per-item fingerprint mismatch inside an intact frame
// refetches only the damaged items in a follow-up batch (stats_
// .item_refetches — counted separately, per the wire format contract).
// Downloaded content is verified against the requested fingerprint
// (end-to-end check, independent of the frame CRC).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "gear/registry_api.hpp"
#include "net/transport.hpp"
#include "util/fingerprint.hpp"

namespace gear::net {

/// Atomics: one stub instance may be shared by concurrent client threads
/// (e.g. parallel batch downloaders); read the fields as plain numbers.
struct RemoteRegistryStats {
  std::atomic<std::uint64_t> requests{0};  // transport round trips issued
  std::atomic<std::uint64_t> retries{0};   // whole-frame retransmissions
  std::atomic<std::uint64_t> integrity_failures{0};  // bad frames + fp mismatch
  std::atomic<std::uint64_t> item_refetches{0};  // single items refetched
};

class RemoteGearRegistry final : public FileRegistryApi {
 public:
  /// `verify_content`: re-hash downloaded payloads and require a match
  /// with the requested fingerprint (end-to-end server check). Disable when
  /// the registry stores collision-salted unique IDs (paper §III-B), whose
  /// names intentionally differ from their content hash.
  explicit RemoteGearRegistry(Transport& transport, int max_attempts = 3,
                              bool verify_content = true,
                              const FingerprintHasher& hasher = default_hasher())
      : transport_(transport),
        max_attempts_(max_attempts),
        verify_content_(verify_content),
        hasher_(hasher) {}

  /// query interface. Throws kInternal after exhausting retries.
  bool query(const Fingerprint& fp) const override;

  /// Batched query: one round trip for the whole fingerprint list.
  std::vector<std::uint8_t> query_many(
      const std::vector<Fingerprint>& fps) const override;

  /// upload interface. Returns true if stored, false if deduplicated.
  bool upload(const Fingerprint& fp, BytesView content) override;

  /// Stores a precompressed frame; one single-item batch round trip.
  bool upload_precompressed(const Fingerprint& fp, Bytes compressed) override;

  /// Batched precompressed upload: one round trip per batch. Returns the
  /// number of items the server newly stored.
  std::size_t upload_precompressed_batch(
      std::vector<std::pair<Fingerprint, Bytes>> items) override;

  /// download interface. kNotFound is NOT retried (it is an answer);
  /// damaged frames and fingerprint mismatches are.
  StatusOr<Bytes> download(const Fingerprint& fp) const override;

  /// Batched download: one round trip per batch; per-item payloads are the
  /// server's stored compressed frames, decompressed (optionally on `pool`)
  /// and fingerprint-verified here. Items that fail verification are
  /// refetched individually (partial retry); a frame damaged in transit is
  /// retried whole. `wire_bytes_out` receives the summed accepted payload
  /// sizes — the compressed transfer volume, matching in-process accounting.
  StatusOr<std::vector<Bytes>> download_batch(
      const std::vector<Fingerprint>& fps, util::ThreadPool* pool = nullptr,
      std::uint64_t* wire_bytes_out = nullptr) const override;

  /// Served from the size the server advertises in query responses.
  StatusOr<std::uint64_t> stored_size(const Fingerprint& fp) const override;

  /// Chunk support over the wire. The first call per fingerprint issues a
  /// manifest probe — a kDownloadChunks request with an empty index list,
  /// answered with the serialized manifest (or kNotFound for a file stored
  /// plain). Either answer is cached: a fingerprint's storage form is
  /// immutable once stored (dedup upserts never restructure an object), so
  /// repeat reads of the same file cost zero extra round trips.
  bool is_chunked(const Fingerprint& fp) const override;
  StatusOr<ChunkManifest> chunk_manifest(const Fingerprint& fp) const override;

  /// Batched chunk download: the whole index list in one kDownloadChunks
  /// frame. Retry granularity mirrors download_batch: a frame damaged in
  /// transit is retransmitted whole, while one corrupt item inside an
  /// intact frame refetches only that chunk (stats_.item_refetches). Items
  /// are verified end-to-end — the echoed fingerprint must match the
  /// manifest entry and the decompressed bytes must hash back to it.
  StatusOr<std::vector<Bytes>> download_chunks(
      const Fingerprint& fp, const ChunkManifest& manifest,
      const std::vector<std::uint32_t>& indices,
      std::uint64_t* wire_bytes_out = nullptr) const override;

  /// Frames through this stub are charged to the simulated link by the
  /// transport itself; clients must not charge their own link model.
  bool transport_accounted() const override { return true; }

  const RemoteRegistryStats& stats() const noexcept { return stats_; }

 private:
  /// Sends and decodes with retries; validates the response type and that
  /// the echoed top-level fingerprint matches.
  WireMessage call(const WireMessage& request, MessageType expected_type) const;

  /// Probes the server for `fp`'s manifest, serving repeats from the cache.
  /// nullopt = probed and stored plain (negative answers cache too).
  const std::optional<ChunkManifest>& probe_manifest(const Fingerprint& fp) const;

  Transport& transport_;
  int max_attempts_;
  bool verify_content_;
  const FingerprintHasher& hasher_;
  mutable RemoteRegistryStats stats_;
  mutable std::mutex manifest_mutex_;
  mutable std::unordered_map<Fingerprint, std::optional<ChunkManifest>,
                             FingerprintHash>
      manifest_cache_;
};

}  // namespace gear::net
