// Client stub for a Gear Registry reached over a Transport.
//
// Presents the registry's query/upload/download API while framing every
// call through the wire protocol. Responses that fail integrity checking
// (bad CRC, truncation, drops) are retried up to a bounded number of
// attempts — transient transmission faults must not surface to the
// deployment path; persistent ones become kUnavailable-style errors.
// Downloaded content is additionally verified against the requested
// fingerprint (end-to-end check, independent of the CRC).
#pragma once

#include <cstdint>

#include "net/transport.hpp"
#include "util/fingerprint.hpp"

namespace gear::net {

struct RemoteRegistryStats {
  std::uint64_t requests = 0;
  std::uint64_t retries = 0;
  std::uint64_t integrity_failures = 0;  // bad frames + fingerprint mismatch
};

class RemoteGearRegistry {
 public:
  /// `verify_content`: re-hash downloaded payloads and require a match
  /// with the requested fingerprint (end-to-end server check). Disable when
  /// the registry stores collision-salted unique IDs (paper §III-B), whose
  /// names intentionally differ from their content hash.
  explicit RemoteGearRegistry(Transport& transport, int max_attempts = 3,
                              bool verify_content = true,
                              const FingerprintHasher& hasher = default_hasher())
      : transport_(transport),
        max_attempts_(max_attempts),
        verify_content_(verify_content),
        hasher_(hasher) {}

  /// query interface. Throws kInternal after exhausting retries.
  bool query(const Fingerprint& fp);

  /// upload interface. Returns true if stored, false if deduplicated.
  bool upload(const Fingerprint& fp, BytesView content);

  /// download interface. kNotFound is NOT retried (it is an answer);
  /// damaged frames and fingerprint mismatches are.
  StatusOr<Bytes> download(const Fingerprint& fp);

  const RemoteRegistryStats& stats() const noexcept { return stats_; }

 private:
  /// Sends and decodes with retries; validates the response type and that
  /// the echoed fingerprint matches.
  WireMessage call(const WireMessage& request, MessageType expected_type);

  Transport& transport_;
  int max_attempts_;
  bool verify_content_;
  const FingerprintHasher& hasher_;
  RemoteRegistryStats stats_;
};

}  // namespace gear::net
