// Transports: how wire frames reach the Gear Registry.
//
//  * LoopbackTransport — serves a GearRegistry in-process: decodes the
//    request, performs the operation, encodes the response; optionally
//    charges the frames to a simulated link. Batch requests are answered in
//    one frame (one round-trip) and charged to the link as a pipelined
//    burst: latency once, per-object service overhead per item.
//  * FaultyTransport — decorator injecting transmission faults (bit flips,
//    truncation, drops) on a deterministic schedule, for exercising the
//    client stub's integrity checking and retry logic.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "gear/object_store.hpp"
#include "gear/registry.hpp"
#include "net/frame_server.hpp"
#include "net/wire.hpp"
#include "sim/network.hpp"
#include "util/rng.hpp"

namespace gear::net {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Sends a request frame, returns the response frame. Transport-level
  /// failures surface as frames that fail decode_message (the client treats
  /// them as retryable), or as an empty frame for a dropped response.
  virtual Bytes round_trip(BytesView request_frame) = 0;
};

/// Serves round_trip() concurrently: the dispatch lives in a FrameServer
/// (internally sharded registry, atomic stats) and the (single-threaded)
/// simulated link is charged under a private mutex. Independent clients may
/// call round_trip from any thread. net::TcpTransport/TcpServer are the
/// real-socket twin of this path: identical frames, identical FrameServer,
/// no simulated link.
class LoopbackTransport final : public Transport {
 public:
  /// `link`: optional; when given, every request/response frame's bytes are
  /// charged to it (batch frames as pipelined bursts).
  explicit LoopbackTransport(GearRegistry& registry,
                             sim::NetworkLink* link = nullptr)
      : registry_(&registry), server_(registry), link_(link) {}

  /// Owns its registry, built over `backend` — how a wire-served registry
  /// picks its storage engine (e.g. a DiskObjectStore that survives server
  /// restarts). A null backend means a fresh in-memory registry.
  explicit LoopbackTransport(std::unique_ptr<ObjectStore> backend,
                             sim::NetworkLink* link = nullptr)
      : owned_(std::make_unique<GearRegistry>(std::move(backend))),
        registry_(owned_.get()),
        server_(*owned_),
        link_(link) {}

  Bytes round_trip(BytesView request_frame) override;

  /// The registry being served (owned or borrowed).
  GearRegistry& registry() noexcept { return *registry_; }
  const GearRegistry& registry() const noexcept { return *registry_; }

  /// The shared dispatch core (what a TcpServer would mount directly).
  FrameServer& frame_server() noexcept { return server_; }

  const LoopbackServerStats& server_stats() const noexcept {
    return server_.stats();
  }

 private:
  void charge_link_request(std::uint64_t bytes);
  void charge_link_response(std::uint64_t bytes, std::uint64_t n_items);

  std::unique_ptr<GearRegistry> owned_;  // set by the backend ctor only
  GearRegistry* registry_;
  FrameServer server_;
  sim::NetworkLink* link_;
  std::mutex link_mutex_;  // NetworkLink is single-threaded; serialize charges
};

/// Fault schedule: every `period`-th round trip is damaged.
struct FaultPlan {
  enum class Kind { kFlipByte, kTruncate, kDrop };
  Kind kind = Kind::kFlipByte;
  /// 1 = every call, 2 = every second call, ...; 0 disables faults.
  std::uint32_t period = 0;
};

/// A transport whose endpoint can be taken down and brought back at will —
/// how the fleet tests and benches simulate a dead registry instance.
/// While down, every round trip returns an empty frame (a dropped
/// response), so the client stub burns its retries and surfaces the usual
/// "unreachable" error; the fleet layer turns that into a replica
/// fallback. Atomic flag: workload threads may race a kill switch.
class DownTransport final : public Transport {
 public:
  explicit DownTransport(Transport& inner, bool down = false)
      : inner_(inner), down_(down) {}

  Bytes round_trip(BytesView request_frame) override {
    if (down_.load(std::memory_order_relaxed)) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return {};
    }
    return inner_.round_trip(request_frame);
  }

  void set_down(bool down) { down_.store(down, std::memory_order_relaxed); }
  bool down() const { return down_.load(std::memory_order_relaxed); }
  std::uint64_t dropped() const { return dropped_.load(); }

 private:
  Transport& inner_;
  std::atomic<bool> down_;
  std::atomic<std::uint64_t> dropped_{0};
};

class FaultyTransport final : public Transport {
 public:
  FaultyTransport(Transport& inner, FaultPlan plan, std::uint64_t seed = 1)
      : inner_(inner), plan_(plan), rng_(seed) {}

  Bytes round_trip(BytesView request_frame) override;

  std::uint64_t faults_injected() const noexcept { return faults_; }

 private:
  Transport& inner_;
  FaultPlan plan_;
  Rng rng_;
  std::uint64_t calls_ = 0;
  std::uint64_t faults_ = 0;
};

}  // namespace gear::net
