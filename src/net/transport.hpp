// Transports: how wire frames reach the Gear Registry.
//
//  * LoopbackTransport — serves a GearRegistry in-process: decodes the
//    request, performs the operation, encodes the response; optionally
//    charges the frames to a simulated link. Batch requests are answered in
//    one frame (one round-trip) and charged to the link as a pipelined
//    burst: latency once, per-object service overhead per item.
//  * FaultyTransport — decorator injecting transmission faults (bit flips,
//    truncation, drops) on a deterministic schedule, for exercising the
//    client stub's integrity checking and retry logic.
#pragma once

#include <cstdint>
#include <memory>

#include "gear/registry.hpp"
#include "net/wire.hpp"
#include "sim/network.hpp"
#include "util/rng.hpp"

namespace gear::net {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Sends a request frame, returns the response frame. Transport-level
  /// failures surface as frames that fail decode_message (the client treats
  /// them as retryable), or as an empty frame for a dropped response.
  virtual Bytes round_trip(BytesView request_frame) = 0;
};

/// Server-side accounting of a LoopbackTransport. One round_trip() call is
/// one round trip, whatever it carries; the *_items counters expose how many
/// objects each interface served, so tests can prove an N-file deploy cost
/// ⌈N/batch⌉ download round-trips instead of N.
struct LoopbackServerStats {
  std::uint64_t round_trips = 0;
  std::uint64_t bad_requests = 0;        // undecodable request frames
  std::uint64_t query_round_trips = 0;
  std::uint64_t query_items = 0;
  std::uint64_t upload_round_trips = 0;
  std::uint64_t upload_items = 0;
  std::uint64_t download_round_trips = 0;
  std::uint64_t download_items = 0;
  std::uint64_t bytes_in = 0;            // request frame bytes
  std::uint64_t bytes_out = 0;           // response frame bytes
};

class LoopbackTransport final : public Transport {
 public:
  /// `link`: optional; when given, every request/response frame's bytes are
  /// charged to it (batch frames as pipelined bursts).
  explicit LoopbackTransport(GearRegistry& registry,
                             sim::NetworkLink* link = nullptr)
      : registry_(registry), link_(link) {}

  Bytes round_trip(BytesView request_frame) override;

  const LoopbackServerStats& server_stats() const noexcept { return stats_; }

 private:
  GearRegistry& registry_;
  sim::NetworkLink* link_;
  LoopbackServerStats stats_;
};

/// Fault schedule: every `period`-th round trip is damaged.
struct FaultPlan {
  enum class Kind { kFlipByte, kTruncate, kDrop };
  Kind kind = Kind::kFlipByte;
  /// 1 = every call, 2 = every second call, ...; 0 disables faults.
  std::uint32_t period = 0;
};

class FaultyTransport final : public Transport {
 public:
  FaultyTransport(Transport& inner, FaultPlan plan, std::uint64_t seed = 1)
      : inner_(inner), plan_(plan), rng_(seed) {}

  Bytes round_trip(BytesView request_frame) override;

  std::uint64_t faults_injected() const noexcept { return faults_; }

 private:
  Transport& inner_;
  FaultPlan plan_;
  Rng rng_;
  std::uint64_t calls_ = 0;
  std::uint64_t faults_ = 0;
};

}  // namespace gear::net
