#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

namespace gear::net {
namespace {

/// Granularity of the poll slices inside blocking reads/writes: how often a
/// blocked I/O loop rechecks its deadline and the server's stop flag.
constexpr int kPollSliceMs = 200;

enum class IoResult { kOk, kEof, kTimeout, kError, kStopped };

void close_fd(int fd) {
  if (fd >= 0) ::close(fd);
}

/// Reads exactly `len` bytes. `timeout_ms` < 0 waits forever (until EOF or
/// `stop`); `stop` may be null.
IoResult read_full(int fd, std::uint8_t* out, std::size_t len, int timeout_ms,
                   const std::atomic<bool>* stop) {
  using Clock = std::chrono::steady_clock;
  auto deadline = Clock::now() + std::chrono::milliseconds(
                                     timeout_ms < 0 ? 0 : timeout_ms);
  std::size_t got = 0;
  while (got < len) {
    if (stop != nullptr && stop->load(std::memory_order_relaxed)) {
      return IoResult::kStopped;
    }
    int wait = kPollSliceMs;
    if (timeout_ms >= 0) {
      auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                      deadline - Clock::now())
                      .count();
      if (left <= 0) return IoResult::kTimeout;
      wait = static_cast<int>(std::min<long long>(left, kPollSliceMs));
    }
    pollfd pfd{fd, POLLIN, 0};
    int ready = ::poll(&pfd, 1, wait);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return IoResult::kError;
    }
    if (ready == 0) continue;  // slice expired; recheck deadline/stop
    ssize_t n = ::recv(fd, out + got, len - got, 0);
    if (n == 0) return IoResult::kEof;
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return IoResult::kError;
    }
    got += static_cast<std::size_t>(n);
  }
  return IoResult::kOk;
}

/// Writes exactly `len` bytes; same timeout/stop contract as read_full.
IoResult write_full(int fd, const std::uint8_t* data, std::size_t len,
                    int timeout_ms, const std::atomic<bool>* stop) {
  using Clock = std::chrono::steady_clock;
  auto deadline = Clock::now() + std::chrono::milliseconds(
                                     timeout_ms < 0 ? 0 : timeout_ms);
  std::size_t sent = 0;
  while (sent < len) {
    if (stop != nullptr && stop->load(std::memory_order_relaxed)) {
      return IoResult::kStopped;
    }
    int wait = kPollSliceMs;
    if (timeout_ms >= 0) {
      auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                      deadline - Clock::now())
                      .count();
      if (left <= 0) return IoResult::kTimeout;
      wait = static_cast<int>(std::min<long long>(left, kPollSliceMs));
    }
    pollfd pfd{fd, POLLOUT, 0};
    int ready = ::poll(&pfd, 1, wait);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return IoResult::kError;
    }
    if (ready == 0) continue;
    ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return IoResult::kError;
    }
    sent += static_cast<std::size_t>(n);
  }
  return IoResult::kOk;
}

/// Writes `frame` behind its 4-byte length prefix.
IoResult write_frame(int fd, BytesView frame, int timeout_ms,
                     const std::atomic<bool>* stop) {
  std::uint8_t header[kFrameHeaderBytes];
  put_frame_length(header, frame.size());
  IoResult r = write_full(fd, header, sizeof header, timeout_ms, stop);
  if (r != IoResult::kOk) return r;
  return write_full(fd, frame.data(), frame.size(), timeout_ms, stop);
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

}  // namespace

StatusOr<HostPort> parse_host_port(const std::string& spec) {
  std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos) {
    return {ErrorCode::kInvalidArgument,
            "expected HOST:PORT, got '" + spec + "'"};
  }
  HostPort out;
  out.host = spec.substr(0, colon);
  std::string port_str = spec.substr(colon + 1);
  if (out.host.empty()) {
    return {ErrorCode::kInvalidArgument, "empty host in '" + spec + "'"};
  }
  if (port_str.empty()) {
    return {ErrorCode::kInvalidArgument, "empty port in '" + spec + "'"};
  }
  std::uint32_t port = 0;
  for (char c : port_str) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return {ErrorCode::kInvalidArgument,
              "port is not a number in '" + spec + "'"};
    }
    port = port * 10 + static_cast<std::uint32_t>(c - '0');
    if (port > 65535) {
      return {ErrorCode::kInvalidArgument,
              "port out of range in '" + spec + "'"};
    }
  }
  out.port = static_cast<std::uint16_t>(port);
  return out;
}

// ---------------------------------------------------------------------------
// TcpServer

TcpServer::TcpServer(FrameServer& frames, Options options)
    : frames_(frames),
      options_(options),
      // Width >= 2: a width-1 util::ThreadPool runs submit() inline, which
      // would serve connections on the accept thread and deadlock accepts.
      pool_(std::max<std::size_t>(2, options.max_clients)) {}

TcpServer::~TcpServer() { stop(); }

void TcpServer::start(const std::string& host, std::uint16_t port) {
  if (started_.exchange(true)) {
    throw Error(ErrorCode::kInvalidArgument, "tcp server already started");
  }
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* res = nullptr;
  std::string port_str = std::to_string(port);
  int rc = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &res);
  if (rc != 0) {
    throw Error(ErrorCode::kInternal, "tcp server: cannot resolve '" + host +
                                          "': " + ::gai_strerror(rc));
  }
  int fd = -1;
  std::string bind_error = "no addresses";
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      bind_error = std::strerror(errno);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
        ::listen(fd, SOMAXCONN) == 0) {
      break;
    }
    bind_error = std::strerror(errno);
    close_fd(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    throw Error(ErrorCode::kInternal, "tcp server: cannot bind " + host + ":" +
                                          port_str + ": " + bind_error);
  }

  // Read the actual port back (meaningful when asked to bind port 0).
  sockaddr_storage addr{};
  socklen_t addr_len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) == 0) {
    if (addr.ss_family == AF_INET) {
      port_ = ntohs(reinterpret_cast<sockaddr_in*>(&addr)->sin_port);
    } else if (addr.ss_family == AF_INET6) {
      port_ = ntohs(reinterpret_cast<sockaddr_in6*>(&addr)->sin6_port);
    }
  }
  if (port_ == 0) port_ = port;

  listen_fd_ = fd;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void TcpServer::accept_loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    int lfd = listen_fd_.load(std::memory_order_relaxed);
    if (lfd < 0) break;
    pollfd pfd{lfd, POLLIN, 0};
    int ready = ::poll(&pfd, 1, kPollSliceMs);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    int client = ::accept(lfd, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listen socket closed by stop()
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    set_nodelay(client);
    {
      std::lock_guard guard(clients_mutex_);
      if (stop_.load(std::memory_order_relaxed)) {
        close_fd(client);
        break;
      }
      client_fds_.insert(client);
      connection_tasks_.push_back(
          pool_.submit([this, client] { serve_connection(client); }));
    }
  }
}

void TcpServer::serve_connection(int fd) {
  Bytes request;
  while (!stop_.load(std::memory_order_relaxed)) {
    // A parked connection may sit idle indefinitely between requests
    // (timeout -1); once the first header byte lands, the peer owes us the
    // rest of the frame within the I/O timeout.
    std::uint8_t header[kFrameHeaderBytes];
    IoResult r = read_full(fd, header, 1, /*timeout_ms=*/-1, &stop_);
    if (r != IoResult::kOk) break;
    r = read_full(fd, header + 1, sizeof header - 1, options_.io_timeout_ms,
                  &stop_);
    if (r != IoResult::kOk) break;
    std::uint32_t len = get_frame_length(header);
    if (len == 0 || len > options_.max_frame_bytes) {
      // Protocol violation (or a memory bomb): drop the connection rather
      // than allocate. The client's retry ladder redials.
      frames_rejected_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    request.resize(len);
    r = read_full(fd, request.data(), len, options_.io_timeout_ms, &stop_);
    if (r != IoResult::kOk) break;

    Bytes response;
    try {
      response = frames_.serve(request);
    } catch (...) {
      // Registry-side failure: answer in-band so the client sees a frame
      // (and its stub can decide to retry), not a dead connection.
      WireMessage reply;
      reply.type = MessageType::kQueryResponse;
      reply.status = Status::kServerError;
      response = encode_message(reply);
    }
    frames_served_.fetch_add(1, std::memory_order_relaxed);
    if (write_frame(fd, response, options_.io_timeout_ms, &stop_) !=
        IoResult::kOk) {
      break;
    }
  }
  std::lock_guard guard(clients_mutex_);
  client_fds_.erase(fd);
  close_fd(fd);
}

void TcpServer::stop() {
  if (!started_.load() || stopped_.exchange(true)) return;
  stop_.store(true, std::memory_order_relaxed);
  // Shut down the listen socket (unblocks accept), join the accept thread,
  // and only then close the fd — the loop must never poll a recycled fd.
  int lfd = listen_fd_.load(std::memory_order_relaxed);
  if (lfd >= 0) ::shutdown(lfd, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  lfd = listen_fd_.exchange(-1, std::memory_order_relaxed);
  if (lfd >= 0) close_fd(lfd);
  {
    std::lock_guard guard(clients_mutex_);
    for (int fd : client_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  std::vector<std::future<void>> tasks;
  {
    std::lock_guard guard(clients_mutex_);
    tasks.swap(connection_tasks_);
  }
  for (auto& task : tasks) {
    if (task.valid()) task.wait();
  }
}

// ---------------------------------------------------------------------------
// TcpTransport

TcpTransport::TcpTransport(std::string host, std::uint16_t port,
                           Options options)
    : host_(std::move(host)), port_(port), options_(options) {}

bool TcpTransport::connect_locked() {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  std::string port_str = std::to_string(port_);
  if (::getaddrinfo(host_.c_str(), port_str.c_str(), &hints, &res) != 0) {
    return false;
  }
  int fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    // Non-blocking connect + poll: a dead host fails within
    // connect_timeout_ms instead of the kernel's (much longer) default.
    int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    int rc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
    if (rc != 0 && errno == EINPROGRESS) {
      pollfd pfd{fd, POLLOUT, 0};
      rc = ::poll(&pfd, 1, options_.connect_timeout_ms) == 1 ? 0 : -1;
      if (rc == 0) {
        int err = 0;
        socklen_t err_len = sizeof err;
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len);
        rc = err == 0 ? 0 : -1;
      }
    }
    if (rc == 0) {
      ::fcntl(fd, F_SETFL, flags);  // back to blocking; I/O paced by poll
      set_nodelay(fd);
      break;
    }
    close_fd(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) return false;
  fd_ = fd;
  if (ever_connected_) {
    reconnects_.fetch_add(1, std::memory_order_relaxed);
  }
  ever_connected_ = true;
  return true;
}

void TcpTransport::close_locked() {
  close_fd(fd_);
  fd_ = -1;
}

void TcpTransport::close() {
  std::lock_guard guard(mutex_);
  close_locked();
}

bool TcpTransport::connected() const {
  std::lock_guard guard(mutex_);
  return fd_ >= 0;
}

Bytes TcpTransport::round_trip(BytesView request_frame) {
  if (request_frame.empty() ||
      request_frame.size() > options_.max_frame_bytes) {
    return {};
  }
  std::lock_guard guard(mutex_);
  int backoff_ms = options_.backoff_initial_ms;
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (attempt > 0) {
      // The peer is misbehaving (refused dial, broken pipe, timeout);
      // back off before burning the next attempt so a restarting server
      // has time to come back.
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms = std::min(backoff_ms * 2, options_.backoff_max_ms);
    }
    if (fd_ < 0 && !connect_locked()) continue;

    if (write_frame(fd_, request_frame, options_.io_timeout_ms, nullptr) !=
        IoResult::kOk) {
      io_errors_.fetch_add(1, std::memory_order_relaxed);
      close_locked();
      continue;
    }
    std::uint8_t header[kFrameHeaderBytes];
    if (read_full(fd_, header, sizeof header, options_.io_timeout_ms,
                  nullptr) != IoResult::kOk) {
      io_errors_.fetch_add(1, std::memory_order_relaxed);
      close_locked();
      continue;
    }
    std::uint32_t len = get_frame_length(header);
    if (len == 0 || len > options_.max_frame_bytes) {
      io_errors_.fetch_add(1, std::memory_order_relaxed);
      close_locked();
      continue;
    }
    Bytes response(len);
    if (read_full(fd_, response.data(), len, options_.io_timeout_ms,
                  nullptr) != IoResult::kOk) {
      io_errors_.fetch_add(1, std::memory_order_relaxed);
      close_locked();
      continue;
    }
    return response;
  }
  // Out of attempts: report a dropped response; the client stub's retry
  // ladder (or its caller) turns persistent ones into kUnavailable.
  return {};
}

}  // namespace gear::net
