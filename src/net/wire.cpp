#include "net/wire.hpp"

#include <cstring>

#include "compress/codec.hpp"  // varint helpers
#include "util/crc32.hpp"

namespace gear::net {
namespace {

constexpr char kMagic[4] = {'G', 'W', 'P', '1'};

bool valid_type(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(MessageType::kQueryRequest) &&
         t <= static_cast<std::uint8_t>(MessageType::kDownloadResponse);
}

bool valid_status(std::uint8_t s) {
  return s <= static_cast<std::uint8_t>(Status::kServerError);
}

void put_u32(Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t get_u32(BytesView data, std::size_t pos) {
  return static_cast<std::uint32_t>(data[pos]) |
         (static_cast<std::uint32_t>(data[pos + 1]) << 8) |
         (static_cast<std::uint32_t>(data[pos + 2]) << 16) |
         (static_cast<std::uint32_t>(data[pos + 3]) << 24);
}

}  // namespace

Bytes encode_message(const WireMessage& message) {
  Bytes out;
  out.reserve(message.payload.size() + 32);
  out.insert(out.end(), kMagic, kMagic + 4);
  out.push_back(static_cast<std::uint8_t>(message.type));
  out.push_back(static_cast<std::uint8_t>(message.status));
  out.insert(out.end(), message.fp.raw().begin(), message.fp.raw().end());
  put_varint(out, message.payload.size());
  append(out, message.payload);
  put_u32(out, crc32(out));
  return out;
}

StatusOr<WireMessage> decode_message(BytesView frame) {
  // Minimum frame: magic 4 + type 1 + status 1 + fp 16 + varint 1 + crc 4.
  if (frame.size() < 27 || std::memcmp(frame.data(), kMagic, 4) != 0) {
    return {ErrorCode::kCorruptData, "wire: bad magic or truncated frame"};
  }
  std::uint32_t expected = get_u32(frame, frame.size() - 4);
  BytesView body = frame.subspan(0, frame.size() - 4);
  if (crc32(body) != expected) {
    return {ErrorCode::kCorruptData, "wire: checksum mismatch"};
  }

  WireMessage message;
  std::size_t pos = 4;
  std::uint8_t type_byte = frame[pos++];
  std::uint8_t status_byte = frame[pos++];
  if (!valid_type(type_byte) || !valid_status(status_byte)) {
    return {ErrorCode::kCorruptData, "wire: unknown type or status"};
  }
  message.type = static_cast<MessageType>(type_byte);
  message.status = static_cast<Status>(status_byte);

  std::array<std::uint8_t, Fingerprint::kSize> raw{};
  std::memcpy(raw.data(), frame.data() + pos, raw.size());
  pos += raw.size();
  message.fp = Fingerprint(raw);

  std::uint64_t payload_len;
  try {
    payload_len = get_varint(body, pos);
  } catch (const Error&) {
    return {ErrorCode::kCorruptData, "wire: bad payload length"};
  }
  if (pos + payload_len != body.size()) {
    return {ErrorCode::kCorruptData, "wire: payload length mismatch"};
  }
  message.payload.assign(body.begin() + static_cast<std::ptrdiff_t>(pos),
                         body.end());
  return message;
}

}  // namespace gear::net
