#include "net/wire.hpp"

#include <cstring>

#include "compress/codec.hpp"  // varint helpers
#include "util/crc32.hpp"

namespace gear::net {
namespace {

constexpr char kMagic[4] = {'G', 'W', 'P', '1'};

/// Smallest encoded item: fingerprint 16 + status 1 + varint 1 (empty
/// payload). Used to bound a decoded item count before allocating.
constexpr std::size_t kMinItemBytes = Fingerprint::kSize + 2;

bool valid_type(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(MessageType::kQueryRequest) &&
         t <= static_cast<std::uint8_t>(MessageType::kDownloadChunksResponse);
}

bool valid_status(std::uint8_t s) {
  return s <= static_cast<std::uint8_t>(Status::kServerError);
}

void put_u32(Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t get_u32(BytesView data, std::size_t pos) {
  return static_cast<std::uint32_t>(data[pos]) |
         (static_cast<std::uint32_t>(data[pos + 1]) << 8) |
         (static_cast<std::uint32_t>(data[pos + 2]) << 16) |
         (static_cast<std::uint32_t>(data[pos + 3]) << 24);
}

}  // namespace

bool is_batch_type(MessageType type) {
  switch (type) {
    case MessageType::kQueryManyRequest:
    case MessageType::kQueryManyResponse:
    case MessageType::kUploadManyRequest:
    case MessageType::kUploadManyResponse:
    case MessageType::kDownloadManyRequest:
    case MessageType::kDownloadManyResponse:
    // The chunk *request* carries indices in its payload, not an item list;
    // only the response is item-framed.
    case MessageType::kDownloadChunksResponse:
      return true;
    default:
      return false;
  }
}

Bytes encode_message(const WireMessage& message) {
  std::size_t item_bytes = 0;
  for (const WireItem& item : message.items) {
    item_bytes += kMinItemBytes + 9 + item.payload.size();
  }
  Bytes out;
  out.reserve(message.payload.size() + item_bytes + 32);
  out.insert(out.end(), kMagic, kMagic + 4);
  out.push_back(static_cast<std::uint8_t>(message.type));
  out.push_back(static_cast<std::uint8_t>(message.status));
  out.insert(out.end(), message.fp.raw().begin(), message.fp.raw().end());
  put_varint(out, message.payload.size());
  append(out, message.payload);
  if (is_batch_type(message.type)) {
    put_varint(out, message.items.size());
    for (const WireItem& item : message.items) {
      out.insert(out.end(), item.fp.raw().begin(), item.fp.raw().end());
      out.push_back(static_cast<std::uint8_t>(item.status));
      put_varint(out, item.payload.size());
      append(out, item.payload);
    }
  }
  put_u32(out, crc32(out));
  return out;
}

StatusOr<WireMessage> decode_message(BytesView frame) {
  // Minimum frame: magic 4 + type 1 + status 1 + fp 16 + varint 1 + crc 4.
  if (frame.size() < 27 || std::memcmp(frame.data(), kMagic, 4) != 0) {
    return {ErrorCode::kCorruptData, "wire: bad magic or truncated frame"};
  }
  std::uint32_t expected = get_u32(frame, frame.size() - 4);
  BytesView body = frame.subspan(0, frame.size() - 4);
  if (crc32(body) != expected) {
    return {ErrorCode::kCorruptData, "wire: checksum mismatch"};
  }

  WireMessage message;
  std::size_t pos = 4;
  std::uint8_t type_byte = frame[pos++];
  std::uint8_t status_byte = frame[pos++];
  if (!valid_type(type_byte) || !valid_status(status_byte)) {
    return {ErrorCode::kCorruptData, "wire: unknown type or status"};
  }
  message.type = static_cast<MessageType>(type_byte);
  message.status = static_cast<Status>(status_byte);

  std::array<std::uint8_t, Fingerprint::kSize> raw{};
  std::memcpy(raw.data(), frame.data() + pos, raw.size());
  pos += raw.size();
  message.fp = Fingerprint(raw);

  std::uint64_t payload_len;
  try {
    payload_len = get_varint(body, pos);
  } catch (const Error&) {
    return {ErrorCode::kCorruptData, "wire: bad payload length"};
  }
  if (payload_len > body.size() - pos) {
    return {ErrorCode::kCorruptData, "wire: payload length mismatch"};
  }
  if (!is_batch_type(message.type)) {
    if (pos + payload_len != body.size()) {
      return {ErrorCode::kCorruptData, "wire: payload length mismatch"};
    }
    message.payload.assign(body.begin() + static_cast<std::ptrdiff_t>(pos),
                           body.end());
    return message;
  }
  message.payload.assign(
      body.begin() + static_cast<std::ptrdiff_t>(pos),
      body.begin() + static_cast<std::ptrdiff_t>(pos + payload_len));
  pos += payload_len;

  std::uint64_t count;
  try {
    count = get_varint(body, pos);
  } catch (const Error&) {
    return {ErrorCode::kCorruptData, "wire: bad item count"};
  }
  if (count > (body.size() - pos) / kMinItemBytes) {
    return {ErrorCode::kCorruptData, "wire: item count exceeds frame"};
  }
  message.items.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    if (body.size() - pos < Fingerprint::kSize + 1) {
      return {ErrorCode::kCorruptData, "wire: truncated item"};
    }
    WireItem item;
    std::memcpy(raw.data(), body.data() + pos, raw.size());
    pos += raw.size();
    item.fp = Fingerprint(raw);
    std::uint8_t item_status = body[pos++];
    if (!valid_status(item_status)) {
      return {ErrorCode::kCorruptData, "wire: unknown item status"};
    }
    item.status = static_cast<Status>(item_status);
    std::uint64_t item_len;
    try {
      item_len = get_varint(body, pos);
    } catch (const Error&) {
      return {ErrorCode::kCorruptData, "wire: bad item payload length"};
    }
    if (item_len > body.size() - pos) {
      return {ErrorCode::kCorruptData, "wire: item payload length mismatch"};
    }
    item.payload.assign(
        body.begin() + static_cast<std::ptrdiff_t>(pos),
        body.begin() + static_cast<std::ptrdiff_t>(pos + item_len));
    pos += item_len;
    message.items.push_back(std::move(item));
  }
  if (pos != body.size()) {
    return {ErrorCode::kCorruptData, "wire: trailing garbage after items"};
  }
  return message;
}

void put_frame_length(std::uint8_t (&header)[kFrameHeaderBytes],
                      std::uint64_t frame_len) {
  header[0] = static_cast<std::uint8_t>(frame_len);
  header[1] = static_cast<std::uint8_t>(frame_len >> 8);
  header[2] = static_cast<std::uint8_t>(frame_len >> 16);
  header[3] = static_cast<std::uint8_t>(frame_len >> 24);
}

std::uint32_t get_frame_length(
    const std::uint8_t (&header)[kFrameHeaderBytes]) {
  return static_cast<std::uint32_t>(header[0]) |
         (static_cast<std::uint32_t>(header[1]) << 8) |
         (static_cast<std::uint32_t>(header[2]) << 16) |
         (static_cast<std::uint32_t>(header[3]) << 24);
}

Bytes encode_chunk_index_list(const std::vector<std::uint32_t>& indices) {
  Bytes out;
  put_varint(out, indices.size());
  for (std::uint32_t index : indices) put_varint(out, index);
  return out;
}

StatusOr<std::vector<std::uint32_t>> decode_chunk_index_list(
    BytesView payload) {
  std::size_t pos = 0;
  std::uint64_t count;
  try {
    count = get_varint(payload, pos);
  } catch (const Error&) {
    return {ErrorCode::kCorruptData, "wire: bad chunk index count"};
  }
  // Each index takes at least one byte; bound before allocating.
  if (count > payload.size() - pos) {
    return {ErrorCode::kCorruptData, "wire: chunk index count exceeds payload"};
  }
  std::vector<std::uint32_t> indices;
  indices.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t index;
    try {
      index = get_varint(payload, pos);
    } catch (const Error&) {
      return {ErrorCode::kCorruptData, "wire: bad chunk index"};
    }
    if (index > UINT32_MAX) {
      return {ErrorCode::kCorruptData, "wire: chunk index overflows 32 bits"};
    }
    indices.push_back(static_cast<std::uint32_t>(index));
  }
  if (pos != payload.size()) {
    return {ErrorCode::kCorruptData, "wire: trailing garbage after indices"};
  }
  return indices;
}

}  // namespace gear::net
