#include "net/frame_server.hpp"

#include "compress/codec.hpp"  // varint helpers

namespace gear::net {

Bytes FrameServer::serve(BytesView request_frame,
                         std::uint64_t* n_items_out) {
  stats_.round_trips.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_in.fetch_add(request_frame.size(), std::memory_order_relaxed);
  if (n_items_out != nullptr) *n_items_out = 1;

  WireMessage response;
  StatusOr<WireMessage> request = decode_message(request_frame);
  if (!request.ok()) {
    // A server cannot even parse the request: answer with a server error
    // carrying an empty fingerprint.
    stats_.bad_requests.fetch_add(1, std::memory_order_relaxed);
    response.type = MessageType::kQueryResponse;
    response.status = Status::kServerError;
    Bytes frame = encode_message(response);
    stats_.bytes_out.fetch_add(frame.size(), std::memory_order_relaxed);
    return frame;
  }

  WireMessage& req = *request;
  std::uint64_t n_items = is_batch_type(req.type) ? req.items.size() : 1;

  response.fp = req.fp;
  switch (req.type) {
    case MessageType::kQueryRequest:
      ++stats_.query_round_trips;
      ++stats_.query_items;
      response.type = MessageType::kQueryResponse;
      response.status =
          files_.query(req.fp) ? Status::kExists : Status::kNotFound;
      break;
    case MessageType::kUploadRequest:
      ++stats_.upload_round_trips;
      ++stats_.upload_items;
      response.type = MessageType::kUploadResponse;
      response.status =
          files_.upload(req.fp, req.payload) ? Status::kOk : Status::kExists;
      break;
    case MessageType::kDownloadRequest: {
      ++stats_.download_round_trips;
      ++stats_.download_items;
      response.type = MessageType::kDownloadResponse;
      StatusOr<Bytes> content = files_.download(req.fp);
      if (content.ok()) {
        response.status = Status::kOk;
        response.payload = std::move(content).value();
      } else {
        response.status = Status::kNotFound;
      }
      break;
    }
    case MessageType::kQueryManyRequest: {
      ++stats_.query_round_trips;
      stats_.query_items += req.items.size();
      response.type = MessageType::kQueryManyResponse;
      response.items.reserve(req.items.size());
      for (const WireItem& item : req.items) {
        WireItem out;
        out.fp = item.fp;
        if (files_.query(item.fp)) {
          out.status = Status::kExists;
          // Advertise the transfer size so clients can plan batch budgets
          // without an extra round trip.
          put_varint(out.payload, files_.stored_size(item.fp).value());
        } else {
          out.status = Status::kNotFound;
        }
        response.items.push_back(std::move(out));
      }
      break;
    }
    case MessageType::kUploadManyRequest: {
      ++stats_.upload_round_trips;
      stats_.upload_items += req.items.size();
      response.type = MessageType::kUploadManyResponse;
      response.items.reserve(req.items.size());
      for (WireItem& item : req.items) {
        WireItem out;
        out.fp = item.fp;
        // Item payloads are precompressed frames: stored verbatim, exactly
        // the in-process upload_precompressed protocol.
        out.status =
            files_.upload_precompressed(item.fp, std::move(item.payload))
                ? Status::kOk
                : Status::kExists;
        response.items.push_back(std::move(out));
      }
      break;
    }
    case MessageType::kDownloadManyRequest: {
      ++stats_.download_round_trips;
      stats_.download_items += req.items.size();
      response.type = MessageType::kDownloadManyResponse;
      response.items.reserve(req.items.size());
      for (const WireItem& item : req.items) {
        WireItem out;
        out.fp = item.fp;
        StatusOr<Bytes> stored = files_.download_compressed(item.fp);
        if (stored.ok()) {
          out.status = Status::kOk;
          out.payload = std::move(stored).value();
        } else {
          out.status = Status::kNotFound;
        }
        response.items.push_back(std::move(out));
      }
      break;
    }
    case MessageType::kDownloadChunksRequest: {
      response.type = MessageType::kDownloadChunksResponse;
      StatusOr<std::vector<std::uint32_t>> indices =
          decode_chunk_index_list(req.payload);
      if (!indices.ok()) {
        stats_.bad_requests.fetch_add(1, std::memory_order_relaxed);
        response.status = Status::kServerError;
        break;
      }
      StatusOr<ChunkManifest> manifest = files_.chunk_manifest(req.fp);
      if (!manifest.ok()) {
        // Not stored chunked (or not stored at all): an answer, not an
        // error — the client falls back to whole-file materialization.
        if (indices->empty()) ++stats_.manifest_round_trips;
        response.status = Status::kNotFound;
        break;
      }
      if (indices->empty()) {
        // Manifest probe: ship the serialized manifest as the payload.
        ++stats_.manifest_round_trips;
        response.payload = manifest->serialize();
        break;
      }
      ++stats_.chunk_round_trips;
      stats_.chunk_items += indices->size();
      n_items = indices->size();  // the response is a pipelined chunk burst
      response.items.reserve(indices->size());
      for (std::uint32_t index : *indices) {
        WireItem out;
        if (index >= manifest->chunks.size()) {
          out.status = Status::kNotFound;  // echoes a zero fingerprint
          response.items.push_back(std::move(out));
          continue;
        }
        out.fp = manifest->chunks[index];
        StatusOr<Bytes> stored = files_.download_chunk_compressed(out.fp);
        if (stored.ok()) {
          out.status = Status::kOk;
          out.payload = std::move(stored).value();
        } else {
          out.status = Status::kNotFound;
        }
        response.items.push_back(std::move(out));
      }
      break;
    }
    default:
      response.type = MessageType::kQueryResponse;
      response.status = Status::kServerError;
      break;
  }

  Bytes frame = encode_message(response);
  stats_.bytes_out.fetch_add(frame.size(), std::memory_order_relaxed);
  if (n_items_out != nullptr) *n_items_out = n_items;
  return frame;
}

}  // namespace gear::net
