#include "net/transport.hpp"

namespace gear::net {

void LoopbackTransport::charge_link_request(std::uint64_t bytes) {
  if (link_ == nullptr) return;
  std::lock_guard guard(link_mutex_);
  link_->request(bytes);
}

void LoopbackTransport::charge_link_response(std::uint64_t bytes,
                                             std::uint64_t n_items) {
  if (link_ == nullptr) return;
  std::lock_guard guard(link_mutex_);
  if (n_items > 1) {
    link_->pipelined(bytes, n_items);
  } else {
    link_->request(bytes);
  }
}

Bytes LoopbackTransport::round_trip(BytesView request_frame) {
  // The request frame is one wire request; batch responses are charged as
  // a pipelined burst (latency once, per-item overhead). Dispatch itself —
  // decode, registry calls, encode, server stats — lives in the shared
  // FrameServer, so the loopback path and the TCP path serve byte-identical
  // frames off identical accounting.
  charge_link_request(request_frame.size());
  std::uint64_t n_items = 1;
  Bytes frame = server_.serve(request_frame, &n_items);
  charge_link_response(frame.size(), n_items);
  return frame;
}

Bytes FaultyTransport::round_trip(BytesView request_frame) {
  Bytes response = inner_.round_trip(request_frame);
  ++calls_;
  if (plan_.period == 0 || calls_ % plan_.period != 0) {
    return response;
  }
  ++faults_;
  switch (plan_.kind) {
    case FaultPlan::Kind::kFlipByte:
      if (!response.empty()) {
        response[rng_.next_below(response.size())] ^= 0xFF;
      }
      return response;
    case FaultPlan::Kind::kTruncate:
      response.resize(response.size() / 2);
      return response;
    case FaultPlan::Kind::kDrop:
      return {};
  }
  return response;
}

}  // namespace gear::net
