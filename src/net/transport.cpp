#include "net/transport.hpp"

namespace gear::net {

Bytes LoopbackTransport::round_trip(BytesView request_frame) {
  if (link_ != nullptr) link_->request(request_frame.size());

  WireMessage response;
  StatusOr<WireMessage> request = decode_message(request_frame);
  if (!request.ok()) {
    // A server cannot even parse the request: answer with a server error
    // carrying an empty fingerprint.
    response.type = MessageType::kQueryResponse;
    response.status = Status::kServerError;
  } else {
    const WireMessage& req = *request;
    response.fp = req.fp;
    switch (req.type) {
      case MessageType::kQueryRequest:
        response.type = MessageType::kQueryResponse;
        response.status =
            registry_.query(req.fp) ? Status::kExists : Status::kNotFound;
        break;
      case MessageType::kUploadRequest:
        response.type = MessageType::kUploadResponse;
        response.status = registry_.upload(req.fp, req.payload)
                              ? Status::kOk
                              : Status::kExists;
        break;
      case MessageType::kDownloadRequest: {
        response.type = MessageType::kDownloadResponse;
        StatusOr<Bytes> content = registry_.download(req.fp);
        if (content.ok()) {
          response.status = Status::kOk;
          response.payload = std::move(content).value();
        } else {
          response.status = Status::kNotFound;
        }
        break;
      }
      default:
        response.type = MessageType::kQueryResponse;
        response.status = Status::kServerError;
        break;
    }
  }

  Bytes frame = encode_message(response);
  if (link_ != nullptr) link_->request(frame.size());
  return frame;
}

Bytes FaultyTransport::round_trip(BytesView request_frame) {
  Bytes response = inner_.round_trip(request_frame);
  ++calls_;
  if (plan_.period == 0 || calls_ % plan_.period != 0) {
    return response;
  }
  ++faults_;
  switch (plan_.kind) {
    case FaultPlan::Kind::kFlipByte:
      if (!response.empty()) {
        response[rng_.next_below(response.size())] ^= 0xFF;
      }
      return response;
    case FaultPlan::Kind::kTruncate:
      response.resize(response.size() / 2);
      return response;
    case FaultPlan::Kind::kDrop:
      return {};
  }
  return response;
}

}  // namespace gear::net
