#include "workload/service.hpp"

#include "util/error.hpp"
#include "util/rng.hpp"

namespace gear::workload {

std::vector<ServiceSpec> fig11_services() {
  // Request mixes follow the paper's benchmarks: memtier (1:10 SET:GET) for
  // the key-value stores, ab (read-only GETs) for the web servers.
  return {
      {"redis", 20000, 8, 25e-6, 0.02, 1.0 / 11.0},
      {"memcached", 20000, 8, 20e-6, 0.02, 1.0 / 11.0},
      {"nginx", 20000, 24, 35e-6, 0.10, 0.0},
      {"httpd", 20000, 24, 45e-6, 0.10, 0.0},
  };
}

ServiceRun run_service(sim::SimClock& clock, const ServiceSpec& spec,
                       const std::vector<std::string>& hot_paths,
                       const std::function<Bytes(const std::string&)>& read_file,
                       const std::function<void(const std::string&, Bytes)>&
                           write_file,
                       double per_file_open_seconds) {
  if (hot_paths.empty()) {
    throw_error(ErrorCode::kInvalidArgument, "service needs hot paths");
  }
  if (!read_file) {
    throw_error(ErrorCode::kInvalidArgument, "service needs a read callback");
  }

  Rng rng = Rng::from_label(0x5eed, spec.name);
  sim::SimTimer timer(clock);
  ServiceRun run;

  // Warm-up: the service opens its config/modules once at first request —
  // all hot files are touched (this is where a Gear mount materializes).
  for (const std::string& path : hot_paths) {
    clock.advance(per_file_open_seconds);
    (void)read_file(path);
  }

  for (int i = 0; i < spec.requests; ++i) {
    clock.advance(spec.cpu_seconds_per_request);
    bool mutating = spec.write_ratio > 0 && rng.next_bool(spec.write_ratio);
    if (mutating && write_file) {
      // Append-style mutation into the writable layer (e.g. AOF/dump).
      const std::string& path = hot_paths[rng.next_below(hot_paths.size())];
      clock.advance(per_file_open_seconds);
      write_file(path + ".dirty", rng.next_bytes(64, 0.5));
    } else if (rng.next_bool(spec.file_touch_ratio)) {
      const std::string& path = hot_paths[rng.next_below(hot_paths.size())];
      clock.advance(per_file_open_seconds);
      (void)read_file(path);
    }
    ++run.requests;
  }
  run.seconds = timer.elapsed();
  return run;
}

}  // namespace gear::workload
