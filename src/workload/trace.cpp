#include "workload/trace.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace gear::workload {

std::vector<TraceEvent> generate_trace(const std::vector<SeriesSpec>& specs,
                                       const TraceSpec& spec) {
  if (specs.empty()) {
    throw_error(ErrorCode::kInvalidArgument, "trace needs at least one series");
  }
  if (spec.mean_interarrival_seconds <= 0 || spec.duration_seconds <= 0 ||
      spec.release_cadence_seconds <= 0) {
    throw_error(ErrorCode::kInvalidArgument, "bad trace parameters");
  }

  Rng rng(spec.seed ^ 0x7ace7ace7ace7aceull);
  std::vector<TraceEvent> events;
  double t = 0;
  for (;;) {
    // Exponential inter-arrival (inverse CDF; clamp u away from 0).
    double u = std::max(rng.next_double(), 1e-12);
    t += -spec.mean_interarrival_seconds * std::log(u);
    if (t >= spec.duration_seconds) break;

    TraceEvent event;
    event.arrival_seconds = t;
    event.series_index = rng.next_zipf(specs.size(), spec.popularity_skew);

    // Head version: staggered release clock per series.
    const SeriesSpec& s = specs[event.series_index];
    double phase = static_cast<double>(
                       Rng::from_label(spec.seed, "phase/" + s.name)
                           .next_below(1000)) /
                   1000.0;
    auto head = static_cast<int>(t / spec.release_cadence_seconds + phase);
    event.version = std::min(head, s.versions - 1);
    events.push_back(event);
  }
  return events;
}

std::vector<StormEvent> generate_deploy_storm(std::size_t sites,
                                              std::size_t nodes_per_site,
                                              double mean_jitter_seconds,
                                              std::uint64_t seed) {
  if (sites == 0 || nodes_per_site == 0) {
    throw_error(ErrorCode::kInvalidArgument,
                "deploy storm needs at least one site and one node");
  }
  if (mean_jitter_seconds < 0) {
    throw_error(ErrorCode::kInvalidArgument, "bad storm jitter");
  }
  Rng rng(seed ^ 0x5708357083570835ull);
  std::vector<StormEvent> events;
  events.reserve(sites * nodes_per_site);
  for (std::size_t s = 0; s < sites; ++s) {
    for (std::size_t n = 0; n < nodes_per_site; ++n) {
      StormEvent event;
      event.site = s;
      event.node = n;
      double u = std::max(rng.next_double(), 1e-12);
      event.arrival_seconds = -mean_jitter_seconds * std::log(u);
      events.push_back(event);
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const StormEvent& a, const StormEvent& b) {
                     return a.arrival_seconds < b.arrival_seconds;
                   });
  std::vector<bool> seeded(sites, false);
  for (StormEvent& event : events) {
    if (!seeded[event.site]) {
      seeded[event.site] = true;
      event.site_seed = true;
    }
  }
  return events;
}

TraceResult replay_trace(
    sim::SimClock& clock, const std::vector<TraceEvent>& events,
    const TraceSpec& spec,
    const std::function<std::string(std::size_t, int)>& deploy,
    const std::function<void(const std::string&)>& destroy,
    const std::function<std::pair<std::size_t, std::uint64_t>(
        const std::string&)>& post_deploy,
    const std::function<void(const std::string&)>& serve) {
  if (!deploy || !destroy) {
    throw_error(ErrorCode::kInvalidArgument, "trace replay needs callbacks");
  }
  TraceResult result;
  std::deque<std::string> live;
  double start = clock.now();

  for (const TraceEvent& event : events) {
    // Wait for the arrival if the node is idle; if the previous deployment
    // overran, start immediately (queued).
    double arrival = start + event.arrival_seconds;
    if (clock.now() < arrival) {
      clock.advance(arrival - clock.now());
    }

    // Scale-down before scale-up when at capacity.
    while (static_cast<int>(live.size()) >= spec.max_live_containers) {
      destroy(live.front());
      live.pop_front();
      ++result.destroys;
    }

    sim::SimTimer timer(clock);
    live.push_back(deploy(event.series_index, event.version));
    result.deploy_latency.record(timer.elapsed());
    ++result.deployments;

    if (serve) {
      sim::SimTimer serve_timer(clock);
      serve(live.back());
      result.serve_latency.record(serve_timer.elapsed());
    }

    if (post_deploy) {
      auto [files, bytes] = post_deploy(live.back());
      result.prefetched_files += files;
      result.prefetched_bytes += bytes;
    }
  }

  // Drain.
  while (!live.empty()) {
    destroy(live.front());
    live.pop_front();
    ++result.destroys;
  }
  result.makespan_seconds = clock.now() - start;
  return result;
}

}  // namespace gear::workload
