// Synthetic image-corpus generator.
//
// Produces layered Docker images for the Table I series with the sharing
// structure real official images exhibit:
//  * every image stacks three layers — distro base, environment/runtime,
//    application — built as snapshots so unchanged layers keep identical
//    digests across versions (layer-level dedup in the Docker registry);
//  * distro base files come from per-distro global pools, so all series on
//    "debian" share those files byte-for-byte (cross-series file dedup);
//  * environment files change only at epoch boundaries; application files
//    churn per version with the series' rate — producing the inter-version
//    duplicate files that file-level dedup removes but layer-level cannot;
//  * everything derives deterministically from (seed, labels), so the same
//    seed regenerates the same corpus bit-for-bit.
//
// `scale` shrinks byte sizes (default 1/1000 of the real corpus' ~370 GB) so
// experiments run in memory; counts and ratios — the paper's shapes — are
// preserved.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "docker/image.hpp"
#include "workload/access.hpp"
#include "workload/spec.hpp"

namespace gear::workload {

class CorpusGenerator {
 public:
  explicit CorpusGenerator(std::uint64_t seed = 42, double scale = 0.001);

  /// Generates version `version` (0-based) of a series.
  docker::Image generate_image(const SeriesSpec& spec, int version) const;

  /// All versions of a series, oldest first.
  std::vector<docker::Image> generate_series(const SeriesSpec& spec) const;

  /// The access profile of the series' startup task at `version` (same task
  /// across versions; per-version salt varies only the non-core selection).
  AccessProfile access_profile(const SeriesSpec& spec, int version) const;

  /// Convenience: access set of one generated image.
  AccessSet access_set(const SeriesSpec& spec, int version) const;

  double scale() const noexcept { return scale_; }
  std::uint64_t seed() const noexcept { return seed_; }

 private:
  struct PoolFile {
    std::string path;
    std::uint64_t size;
  };

  /// The global file pool of a distro (path+size schedule; content depends
  /// on per-file revision).
  std::vector<PoolFile> distro_pool(const std::string& distro) const;

  /// Deterministic revision of a file that changes with probability
  /// `change_prob` at each of versions 1..version.
  static int revision_at(std::uint64_t base_seed, const std::string& label,
                         int version, double change_prob);

  Bytes file_content(const std::string& label, int revision,
                     std::uint64_t size, double compressibility) const;

  void add_base_files(const SeriesSpec& spec, int version,
                      vfs::FileTree* tree) const;
  void add_env_files(const SeriesSpec& spec, int version,
                     vfs::FileTree* tree) const;
  void add_app_files(const SeriesSpec& spec, int version,
                     vfs::FileTree* tree) const;

  std::uint64_t seed_;
  double scale_;
};

}  // namespace gear::workload
