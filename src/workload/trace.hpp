// Trace-driven deployment workloads.
//
// The paper motivates Gear with serverless cold starts and CI/CD version
// churn (§I, §II-D): a node does not deploy one image in isolation — it
// serves a *stream* of launches across many images whose versions keep
// advancing. This module synthesizes such streams deterministically and
// replays them against any deployment client:
//
//  * arrivals  — exponential inter-arrival times (Poisson process);
//  * images    — series chosen Zipf-skewed (a few hot services dominate);
//  * versions  — each series releases on its own cadence; deployments
//                always target the current head (the CI/CD pattern);
//  * lifetime  — a bounded number of live containers; the oldest is
//                destroyed when the cap is hit (scale-down / eviction).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/clock.hpp"
#include "util/histogram.hpp"
#include "workload/spec.hpp"

namespace gear::workload {

struct TraceSpec {
  double duration_seconds = 3600;
  double mean_interarrival_seconds = 8.0;
  /// Zipf exponent for series popularity (1.0-1.3 typical).
  double popularity_skew = 1.1;
  /// A series releases a new version every `release_cadence_seconds`
  /// (staggered per series), until it runs out of versions.
  double release_cadence_seconds = 600;
  /// Live-container cap; exceeding it destroys the oldest first.
  int max_live_containers = 32;
  std::uint64_t seed = 1;
};

struct TraceEvent {
  double arrival_seconds = 0;
  std::size_t series_index = 0;  // into the spec vector
  int version = 0;               // head version at arrival time
};

/// Generates the deployment event stream. Deterministic per (specs, spec).
std::vector<TraceEvent> generate_trace(const std::vector<SeriesSpec>& specs,
                                       const TraceSpec& spec);

/// One node's arrival in a cross-site deploy storm: a new version lands and
/// every node of every site warms it at (nearly) the same time, jittered so
/// arrivals interleave instead of marching in lockstep.
struct StormEvent {
  std::size_t site = 0;
  std::size_t node = 0;        // node index within the site
  double arrival_seconds = 0;  // jittered offset from the push
  /// True for the first arrival of each site: that node is the one that
  /// seeds its site over the WAN (everyone after it should find local
  /// peers). Exactly one per site.
  bool site_seed = false;
};

/// Generates the deploy-storm arrival order for `sites` x `nodes_per_site`
/// nodes: every node gets an exponential-jitter arrival, events are sorted
/// by time, and the earliest arrival of each site is flagged `site_seed`.
/// Deterministic per (sites, nodes_per_site, seed).
std::vector<StormEvent> generate_deploy_storm(std::size_t sites,
                                              std::size_t nodes_per_site,
                                              double mean_jitter_seconds,
                                              std::uint64_t seed);

/// Replay outcome.
struct TraceResult {
  Histogram deploy_latency;       // seconds per deployment
  /// Seconds each deployment's workload spent issuing its reads (the
  /// optional `serve` hook). For a lazy deploy this is where demand
  /// fault-in happens — the container is still cold when serving starts.
  Histogram serve_latency;
  std::uint64_t deployments = 0;
  std::uint64_t destroys = 0;
  double makespan_seconds = 0;    // clock time to drain the trace
  /// Accumulated from the optional post_deploy hook (background prefetch
  /// work performed between arrivals).
  std::uint64_t prefetched_files = 0;
  std::uint64_t prefetched_bytes = 0;
};

/// Replays `events` against a client through callbacks:
///   deploy(series_index, version) -> container id (performs and charges
///   the deployment; the runner measures its latency via `clock`);
///   destroy(container_id) tears one down;
///   post_deploy(container_id) — optional — runs right after each deploy
///   (after `serve`), outside the latency measurement (the idle-gap slot a
///   background prefetcher/backfiller would occupy); returns (files, bytes)
///   it moved, accumulated into TraceResult::prefetched_*;
///   serve(container_id) — optional — the workload itself: issues the
///   deployment's reads right after deploy() returns, timed into
///   serve_latency. With a lazy client deploy() returns at readiness, so
///   serve() runs against a still-cold container and demand-faults its
///   files in.
/// The runner advances `clock` through idle gaps between arrivals (a
/// deployment that overruns the next arrival simply delays it, as a busy
/// single-node executor would).
TraceResult replay_trace(
    sim::SimClock& clock, const std::vector<TraceEvent>& events,
    const TraceSpec& spec,
    const std::function<std::string(std::size_t, int)>& deploy,
    const std::function<void(const std::string&)>& destroy,
    const std::function<std::pair<std::size_t, std::uint64_t>(
        const std::string&)>& post_deploy = nullptr,
    const std::function<void(const std::string&)>& serve = nullptr);

}  // namespace gear::workload
