// Post-deployment service workloads (paper §V-F, Fig. 11).
//
// Models the request loops of the paper's long-running benchmarks —
// memtier_benchmark against Redis/Memcached (1:10 SET:GET) and Apache ab
// against Nginx/Httpd — as clock-charged request streams that touch the
// service's hot files through whichever root filesystem (Docker Overlay2 or
// Gear File Viewer) the container mounts. After a short warm-up both mounts
// serve from materialized files, which is why the paper measures near-equal
// throughput.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/clock.hpp"
#include "util/bytes.hpp"

namespace gear::workload {

struct ServiceSpec {
  std::string name;
  int requests = 10000;
  /// Distinct hot files a request may touch (config, modules, content).
  int hot_files = 16;
  /// CPU time per request (independent of the storage stack).
  double cpu_seconds_per_request = 40e-6;
  /// Fraction of requests that touch a file at all (most hits are served
  /// from application memory once warm).
  double file_touch_ratio = 0.05;
  /// SET:GET style mutation ratio — mutating requests write through to the
  /// container's writable layer.
  double write_ratio = 0.0;
};

/// The four services of Fig. 11a.
std::vector<ServiceSpec> fig11_services();

struct ServiceRun {
  double seconds = 0;
  std::uint64_t requests = 0;
  double requests_per_second() const {
    return seconds > 0 ? static_cast<double>(requests) / seconds : 0.0;
  }
};

/// Drives `spec.requests` requests against a mounted root filesystem.
/// `read_file(path)` must return the file's content (materializing it if the
/// mount is a Gear viewer); `write_file(path, bytes)` applies a mutation
/// (may be null when write_ratio is 0). `per_file_open_seconds` charges the
/// VFS open path; CPU time is charged per request.
ServiceRun run_service(sim::SimClock& clock, const ServiceSpec& spec,
                       const std::vector<std::string>& hot_paths,
                       const std::function<Bytes(const std::string&)>& read_file,
                       const std::function<void(const std::string&, Bytes)>&
                           write_file,
                       double per_file_open_seconds);

}  // namespace gear::workload
