#include "workload/generator.hpp"

#include <algorithm>
#include <cstdio>

#include "util/error.hpp"

namespace gear::workload {
namespace {

/// FNV-1a for stable label hashing.
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Probability a base-pool file changes per distro release.
constexpr double kBaseChurn = 0.75;
/// Probability an environment file changes at an epoch boundary.
constexpr double kEnvChurn = 0.7;

/// Floor on the average generated file size. When the corpus is scaled down,
/// file counts shrink along with bytes so per-file overheads (tar headers,
/// index stubs, fetch requests) keep a realistic proportion to file data —
/// without this floor, a 1/1000-scale corpus would be all 500-byte files and
/// every per-object cost would dominate, inverting the paper's economics.
constexpr std::uint64_t kMinAvgFileBytes = 4096;

int effective_count(std::uint64_t budget, int nominal) {
  if (budget == 0 || nominal <= 0) return 0;
  auto by_size = static_cast<int>(budget / kMinAvgFileBytes);
  return std::clamp(by_size, 1, nominal);
}

struct DistroPoolSpec {
  std::uint64_t bytes;
  int files;
};

DistroPoolSpec distro_pool_spec(const std::string& distro) {
  // Matches the distro series' own image sizes (spec.cpp) so that a distro
  // series essentially *is* its pool.
  if (distro == "debian") return {118000000, 180};
  if (distro == "ubuntu") return {75000000, 150};
  if (distro == "alpine") return {6000000, 90};
  if (distro == "centos") return {200000000, 200};
  if (distro == "amazonlinux") return {160000000, 170};
  if (distro == "busybox") return {1300000, 24};
  if (distro == "scratch") return {0, 0};
  throw_error(ErrorCode::kInvalidArgument, "unknown distro: " + distro);
}

/// Deterministic per-file size schedule summing (approximately) to `budget`.
std::vector<std::uint64_t> size_schedule(std::uint64_t seed,
                                         const std::string& prefix, int count,
                                         std::uint64_t budget) {
  if (count <= 0 || budget == 0) return {};
  std::vector<std::uint64_t> weights(static_cast<std::size_t>(count));
  std::uint64_t total_weight = 0;
  for (int i = 0; i < count; ++i) {
    Rng rng = Rng::from_label(seed, prefix + "/sz/" + std::to_string(i));
    weights[static_cast<std::size_t>(i)] = rng.next_log_uniform(1, 512);
    total_weight += weights[static_cast<std::size_t>(i)];
  }
  std::vector<std::uint64_t> sizes(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    auto s = static_cast<std::uint64_t>(
        static_cast<double>(weights[static_cast<std::size_t>(i)]) /
        static_cast<double>(total_weight) * static_cast<double>(budget));
    sizes[static_cast<std::size_t>(i)] = std::max<std::uint64_t>(1, s);
  }
  return sizes;
}

std::string zero_pad(int v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d", v);
  return buf;
}

}  // namespace

CorpusGenerator::CorpusGenerator(std::uint64_t seed, double scale)
    : seed_(seed), scale_(scale) {
  if (scale <= 0 || scale > 1.0) {
    throw_error(ErrorCode::kInvalidArgument, "corpus scale must be in (0,1]");
  }
}

int CorpusGenerator::revision_at(std::uint64_t base_seed,
                                 const std::string& label, int version,
                                 double change_prob) {
  int rev = 0;
  for (int v = 1; v <= version; ++v) {
    std::uint64_t h =
        fnv1a(label + "@" + std::to_string(v)) ^ (base_seed * 0x9e3779b97f4a7c15ull);
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
    if (static_cast<double>(h % 1000000) < change_prob * 1000000.0) ++rev;
  }
  return rev;
}

Bytes CorpusGenerator::file_content(const std::string& label, int revision,
                                    std::uint64_t size,
                                    double compressibility) const {
  Rng rng = Rng::from_label(seed_, label + "#r" + std::to_string(revision));
  return rng.next_bytes(size, compressibility);
}

std::vector<CorpusGenerator::PoolFile> CorpusGenerator::distro_pool(
    const std::string& distro) const {
  DistroPoolSpec spec = distro_pool_spec(distro);
  auto budget = static_cast<std::uint64_t>(
      static_cast<double>(spec.bytes) * scale_);
  int files = effective_count(budget, spec.files);
  std::vector<std::uint64_t> sizes =
      size_schedule(seed_, "pool/" + distro, files, budget);
  std::vector<PoolFile> pool;
  pool.reserve(sizes.size());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    pool.push_back({"usr/share/" + distro + "/f" + zero_pad(static_cast<int>(i)),
                    sizes[i]});
  }
  return pool;
}

void CorpusGenerator::add_base_files(const SeriesSpec& spec, int version,
                                     vfs::FileTree* tree) const {
  std::vector<PoolFile> pool = distro_pool(spec.base_distro);
  if (pool.empty()) return;

  // Application series pin their base to epoch boundaries; distro series
  // (base_epoch == 1) track every release.
  int virtual_version = (version / spec.base_epoch) * spec.base_epoch;

  auto budget = static_cast<std::uint64_t>(
      spec.base_fraction * static_cast<double>(spec.image_bytes) * scale_);
  std::uint64_t taken = 0;
  for (std::size_t i = 0; i < pool.size() && taken < budget; ++i) {
    const std::string label =
        "base/" + spec.base_distro + "/" + std::to_string(i);
    int rev = revision_at(seed_, label, virtual_version, kBaseChurn);
    tree->add_file(pool[i].path,
                   file_content(label, rev, pool[i].size, spec.compressibility));
    taken += pool[i].size;
  }
  // A couple of stable symlinks, as real base images carry.
  tree->add_symlink("bin/sh", "/usr/share/" + spec.base_distro + "/f0000");
  tree->add_symlink("usr/bin/env", "../share/" + spec.base_distro + "/f0001");
}

void CorpusGenerator::add_env_files(const SeriesSpec& spec, int version,
                                    vfs::FileTree* tree) const {
  auto budget = static_cast<std::uint64_t>(
      spec.env_fraction * static_cast<double>(spec.image_bytes) * scale_);
  int n_env = effective_count(
      budget, static_cast<int>(spec.env_fraction *
                               static_cast<double>(spec.file_count)));
  if (n_env <= 0) return;
  std::vector<std::uint64_t> sizes =
      size_schedule(seed_, "env/" + spec.name, n_env, budget);

  int epoch = version / spec.env_epoch;
  for (int i = 0; i < n_env; ++i) {
    const std::string label = "env/" + spec.name + "/" + std::to_string(i);
    int rev = revision_at(seed_, label, epoch, kEnvChurn);
    tree->add_file("opt/" + spec.name + "/env/f" + zero_pad(i),
                   file_content(label, rev, sizes[static_cast<std::size_t>(i)],
                                spec.compressibility));
  }
}

void CorpusGenerator::add_app_files(const SeriesSpec& spec, int version,
                                    vfs::FileTree* tree) const {
  double app_fraction =
      std::max(0.05, 1.0 - spec.base_fraction - spec.env_fraction);
  auto budget = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(app_fraction *
                                    static_cast<double>(spec.image_bytes) *
                                    scale_));
  int n_app = std::max(
      1, effective_count(budget, static_cast<int>(
                                     app_fraction *
                                     static_cast<double>(spec.file_count))));
  std::vector<std::uint64_t> sizes =
      size_schedule(seed_, "app/" + spec.name, n_app, budget);

  for (int i = 0; i < n_app; ++i) {
    const std::string label = "app/" + spec.name + "/" + std::to_string(i);
    int rev = revision_at(seed_, label, version, spec.app_churn);
    tree->add_file("app/" + spec.name + "/f" + zero_pad(i),
                   file_content(label, rev, sizes[static_cast<std::size_t>(i)],
                                spec.compressibility));
  }
  // Version marker (every version differs somewhere, like a build stamp).
  tree->add_file("app/" + spec.name + "/VERSION",
                 to_bytes(spec.name + " v" + std::to_string(version) + "\n"));
}

docker::Image CorpusGenerator::generate_image(const SeriesSpec& spec,
                                              int version) const {
  if (version < 0 || version >= spec.versions) {
    throw_error(ErrorCode::kInvalidArgument,
                "version out of range for series " + spec.name);
  }

  vfs::FileTree base;
  add_base_files(spec, version, &base);

  vfs::FileTree with_env = base;
  add_env_files(spec, version, &with_env);

  vfs::FileTree full = with_env;
  add_app_files(spec, version, &full);

  docker::ImageBuilder builder;
  if (!base.root().children().empty()) builder.add_snapshot(base);
  if (!with_env.equals(base)) builder.add_snapshot(with_env);
  builder.add_snapshot(full);

  docker::ImageConfig config;
  config.env = {"PATH=/usr/local/sbin:/usr/local/bin:/usr/sbin:/usr/bin",
                "SERIES=" + spec.name};
  config.entrypoint = {"/app/" + spec.name + "/f0000"};
  config.working_dir = "/app/" + spec.name;
  config.labels["series"] = spec.name;
  config.labels["category"] = category_name(spec.category);

  return builder.build(spec.name, "v" + std::to_string(version),
                       std::move(config));
}

std::vector<docker::Image> CorpusGenerator::generate_series(
    const SeriesSpec& spec) const {
  std::vector<docker::Image> images;
  images.reserve(static_cast<std::size_t>(spec.versions));
  for (int v = 0; v < spec.versions; ++v) {
    images.push_back(generate_image(spec, v));
  }
  return images;
}

AccessProfile CorpusGenerator::access_profile(const SeriesSpec& spec,
                                              int version) const {
  AccessProfile profile;
  profile.data_fraction = spec.access_fraction;
  profile.core_bias = spec.access_core_bias;
  profile.seed = fnv1a("task/" + spec.name) ^ seed_;
  profile.image_salt = static_cast<std::uint64_t>(version) + 1;
  return profile;
}

AccessSet CorpusGenerator::access_set(const SeriesSpec& spec,
                                      int version) const {
  docker::Image image = generate_image(spec, version);
  return derive_access_set(image.flatten(), access_profile(spec, version));
}

}  // namespace gear::workload
