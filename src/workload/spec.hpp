// The evaluation corpus: the paper's Table I workloads.
//
// 50 most-popular Docker Hub official image series in six categories, with
// the most recent 20 versions each (hello-world, centos, eclipse-mosquitto
// have fewer) — 971 images total. Since Docker Hub itself is unavailable,
// each series carries synthesis parameters (size, file count, inter-version
// churn, environment epoch length, necessary-data fraction) calibrated so
// the aggregate statistics the paper reports (Table II, Fig. 2, Fig. 7)
// emerge from the generated corpus.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gear::workload {

enum class Category {
  kLinuxDistro,
  kLanguage,
  kDatabase,
  kWebComponent,
  kApplicationPlatform,
  kOthers,
};

constexpr const char* category_name(Category c) {
  switch (c) {
    case Category::kLinuxDistro: return "Linux Distro";
    case Category::kLanguage: return "Language";
    case Category::kDatabase: return "Database";
    case Category::kWebComponent: return "Web Component";
    case Category::kApplicationPlatform: return "Application Platform";
    case Category::kOthers: return "Others";
  }
  return "?";
}

constexpr std::size_t kCategoryCount = 6;

/// All categories in the paper's presentation order.
std::vector<Category> all_categories();

/// Synthesis parameters of one image series.
struct SeriesSpec {
  std::string name;
  Category category;
  int versions = 20;

  /// Approximate uncompressed root-filesystem size of one image, bytes
  /// (before corpus-wide scaling).
  std::uint64_t image_bytes = 0;
  /// Approximate number of regular files per image (before scaling).
  int file_count = 0;

  /// Which distro base pool the series builds on ("debian", "alpine", ...).
  /// Series on the same base share those files exactly (cross-series dedup).
  std::string base_distro;
  /// Fraction of the image occupied by the shared distro base.
  double base_fraction = 0.3;
  /// Fraction occupied by the series' environment/runtime files; the rest
  /// is application data.
  double env_fraction = 0.3;

  /// Fraction of application files that change between consecutive versions.
  double app_churn = 0.3;
  /// Environment files change only every `env_epoch` versions.
  int env_epoch = 6;
  /// Distro base revision advances every `base_epoch` versions (distro
  /// series themselves churn per version).
  int base_epoch = 10;

  /// Fraction of image bytes the startup task needs (paper: 6.4%–33.3%).
  double access_fraction = 0.2;
  /// Stability of the access selection across versions (drives Fig. 2).
  double access_core_bias = 0.8;

  /// Mean content compressibility in [0,1] for generated files.
  double compressibility = 0.30;
};

/// The full Table I corpus (50 series, 971 images).
std::vector<SeriesSpec> table1_corpus();

/// A reduced corpus for unit tests and quick runs: `per_category` series
/// each truncated to `versions` versions.
std::vector<SeriesSpec> small_corpus(int per_category, int versions);

/// Total image count across specs.
int total_images(const std::vector<SeriesSpec>& specs);

}  // namespace gear::workload
