#include "workload/access.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace gear::workload {
namespace {

/// Deterministic 64-bit mix of a fingerprint and salts (splitmix64 core).
std::uint64_t mix(const Fingerprint& fp, std::uint64_t a, std::uint64_t b = 0) {
  std::uint64_t x = a ^ (b * 0x9e3779b97f4a7c15ull);
  for (std::size_t i = 0; i < 8; ++i) {
    x ^= static_cast<std::uint64_t>(fp.raw()[i]) << (i * 8);
  }
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t AccessSet::total_bytes() const {
  std::uint64_t total = 0;
  for (const auto& f : files) total += f.size;
  return total;
}

AccessSet derive_access_set(const vfs::FileTree& tree,
                            const AccessProfile& profile) {
  struct Candidate {
    FileAccess access;
    std::uint64_t priority;
  };
  std::vector<Candidate> candidates;
  std::uint64_t total_bytes = 0;

  tree.walk([&](const std::string& path, const vfs::FileNode& node) {
    FileAccess fa;
    fa.path = path;
    if (node.is_regular()) {
      fa.size = node.content().size();
      fa.fingerprint = default_hasher().fingerprint(node.content());
    } else if (node.is_fingerprint()) {
      fa.size = node.stub_size();
      fa.fingerprint = node.fingerprint();
    } else {
      return;
    }
    total_bytes += fa.size;

    // Stable priority keeps the same content ranked identically across
    // versions (the shared task); the noisy branch injects per-image
    // variation for the non-core part of the selection.
    bool stable = mix(fa.fingerprint, profile.seed) % 1000 <
                  static_cast<std::uint64_t>(profile.core_bias * 1000);
    std::uint64_t priority =
        stable ? mix(fa.fingerprint, profile.seed)
               : mix(fa.fingerprint, profile.seed, profile.image_salt * 31 + 7);
    candidates.push_back({std::move(fa), priority});
  });

  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.priority != b.priority) return a.priority < b.priority;
              return a.access.path < b.access.path;
            });

  auto budget = static_cast<std::uint64_t>(
      profile.data_fraction * static_cast<double>(total_bytes));
  AccessSet set;
  std::uint64_t taken = 0;
  for (Candidate& c : candidates) {
    if (taken >= budget && !set.files.empty()) break;
    taken += c.access.size;
    set.files.push_back(std::move(c.access));
  }
  return set;
}

double access_redundancy(const std::vector<AccessSet>& sets) {
  struct Entry {
    std::uint64_t size = 0;
    int set_count = 0;
  };
  std::unordered_map<Fingerprint, Entry, FingerprintHash> by_fp;
  for (const AccessSet& set : sets) {
    std::unordered_set<Fingerprint, FingerprintHash> seen;
    for (const FileAccess& f : set.files) {
      if (!seen.insert(f.fingerprint).second) continue;
      Entry& e = by_fp[f.fingerprint];
      e.size = f.size;
      ++e.set_count;
    }
  }
  std::uint64_t union_bytes = 0;
  std::uint64_t redundant_bytes = 0;
  for (const auto& [fp, e] : by_fp) {
    (void)fp;
    union_bytes += e.size;
    if (e.set_count > 1) redundant_bytes += e.size;
  }
  if (union_bytes == 0) return 0.0;
  return static_cast<double>(redundant_bytes) /
         static_cast<double>(union_bytes);
}

std::uint64_t shared_bytes(const AccessSet& prev, const AccessSet& next) {
  std::unordered_set<Fingerprint, FingerprintHash> have;
  for (const FileAccess& f : prev.files) have.insert(f.fingerprint);
  std::uint64_t total = 0;
  std::unordered_set<Fingerprint, FingerprintHash> counted;
  for (const FileAccess& f : next.files) {
    if (have.count(f.fingerprint) != 0 && counted.insert(f.fingerprint).second) {
      total += f.size;
    }
  }
  return total;
}

}  // namespace gear::workload
