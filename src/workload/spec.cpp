#include "workload/spec.hpp"

namespace gear::workload {
namespace {

constexpr std::uint64_t MB = 1000ull * 1000ull;

/// Category-level synthesis presets. Application-type categories keep most
/// of their environment stable across versions (high file-level sharing,
/// Fig. 7a shows 46–61% savings); base-image categories churn most of their
/// content every version (20–33% savings).
struct CategoryPreset {
  double base_fraction;
  double env_fraction;
  double app_churn;
  int env_epoch;
  int base_epoch;
  double access_fraction;
  double access_core_bias;
};

CategoryPreset preset(Category c) {
  switch (c) {
    case Category::kLinuxDistro:
      return {0.85, 0.10, 0.50, 1, 1, 0.08, 0.80};
    case Category::kLanguage:
      return {0.25, 0.55, 0.50, 2, 10, 0.15, 0.38};
    case Category::kDatabase:
      return {0.30, 0.38, 0.30, 8, 12, 0.30, 0.45};
    case Category::kWebComponent:
      return {0.30, 0.35, 0.25, 7, 12, 0.22, 0.40};
    case Category::kApplicationPlatform:
      return {0.28, 0.40, 0.28, 8, 12, 0.30, 0.50};
    case Category::kOthers:
      return {0.30, 0.35, 0.38, 5, 10, 0.20, 0.38};
  }
  return {};
}

SeriesSpec make(const std::string& name, Category cat, int versions,
                double size_mb, int files, const std::string& distro,
                double compressibility = 0.30) {
  CategoryPreset p = preset(cat);
  SeriesSpec s;
  s.name = name;
  s.category = cat;
  s.versions = versions;
  s.image_bytes = static_cast<std::uint64_t>(size_mb * static_cast<double>(MB));
  s.file_count = files;
  s.base_distro = distro;
  s.base_fraction = p.base_fraction;
  s.env_fraction = p.env_fraction;
  s.app_churn = p.app_churn;
  s.env_epoch = p.env_epoch;
  s.base_epoch = p.base_epoch;
  s.access_fraction = p.access_fraction;
  s.access_core_bias = p.access_core_bias;
  s.compressibility = compressibility;
  return s;
}

}  // namespace

std::vector<Category> all_categories() {
  return {Category::kLinuxDistro,        Category::kLanguage,
          Category::kDatabase,           Category::kWebComponent,
          Category::kApplicationPlatform, Category::kOthers};
}

std::vector<SeriesSpec> table1_corpus() {
  using C = Category;
  std::vector<SeriesSpec> specs;

  // Linux Distro (base images: whole content is the distro pool, churned
  // almost every version).
  specs.push_back(make("alpine", C::kLinuxDistro, 20, 6, 90, "alpine"));
  specs.push_back(make("amazonlinux", C::kLinuxDistro, 20, 160, 170, "amazonlinux"));
  specs.push_back(make("busybox", C::kLinuxDistro, 20, 1.3, 24, "busybox"));
  specs.push_back(make("centos", C::kLinuxDistro, 10, 200, 200, "centos"));
  specs.push_back(make("debian", C::kLinuxDistro, 20, 118, 180, "debian"));
  specs.push_back(make("ubuntu", C::kLinuxDistro, 20, 75, 150, "ubuntu"));

  // Language runtimes.
  specs.push_back(make("golang", C::kLanguage, 20, 760, 480, "debian"));
  specs.push_back(make("java", C::kLanguage, 20, 480, 360, "debian"));
  specs.push_back(make("openjdk", C::kLanguage, 20, 470, 350, "debian"));
  specs.push_back(make("php", C::kLanguage, 20, 380, 300, "debian"));
  specs.push_back(make("python", C::kLanguage, 20, 880, 520, "debian"));
  specs.push_back(make("ruby", C::kLanguage, 20, 840, 500, "debian"));

  // Databases.
  specs.push_back(make("cassandra", C::kDatabase, 20, 350, 300, "debian"));
  specs.push_back(make("couchbase", C::kDatabase, 20, 600, 420, "ubuntu"));
  specs.push_back(make("crate", C::kDatabase, 20, 500, 380, "centos"));
  specs.push_back(make("elasticsearch", C::kDatabase, 20, 550, 400, "centos"));
  specs.push_back(make("influxdb", C::kDatabase, 20, 250, 250, "debian"));
  specs.push_back(make("mariadb", C::kDatabase, 20, 330, 290, "ubuntu"));
  specs.push_back(make("memcached", C::kDatabase, 20, 80, 140, "debian"));
  specs.push_back(make("mongo", C::kDatabase, 20, 400, 330, "ubuntu"));
  specs.push_back(make("mysql", C::kDatabase, 20, 450, 350, "debian"));
  specs.push_back(make("postgres", C::kDatabase, 20, 300, 280, "debian"));
  specs.push_back(make("redis", C::kDatabase, 20, 100, 160, "debian"));

  // Web components.
  specs.push_back(make("consul", C::kWebComponent, 20, 120, 180, "alpine"));
  specs.push_back(make("eclipse-mosquitto", C::kWebComponent, 18, 12, 60, "alpine"));
  specs.push_back(make("haproxy", C::kWebComponent, 20, 90, 150, "debian"));
  specs.push_back(make("httpd", C::kWebComponent, 20, 140, 200, "debian"));
  specs.push_back(make("kibana", C::kWebComponent, 20, 700, 460, "centos"));
  specs.push_back(make("kong", C::kWebComponent, 20, 300, 280, "alpine"));
  specs.push_back(make("nginx", C::kWebComponent, 20, 130, 190, "debian"));
  specs.push_back(make("node", C::kWebComponent, 20, 900, 520, "debian"));
  specs.push_back(make("telegraf", C::kWebComponent, 20, 250, 250, "debian"));
  specs.push_back(make("tomcat", C::kWebComponent, 20, 500, 380, "debian"));
  specs.push_back(make("traefik", C::kWebComponent, 20, 95, 150, "alpine"));

  // Application platforms.
  specs.push_back(make("drupal", C::kApplicationPlatform, 20, 450, 350, "debian"));
  specs.push_back(make("ghost", C::kApplicationPlatform, 20, 400, 330, "debian"));
  specs.push_back(make("jenkins", C::kApplicationPlatform, 20, 600, 420, "debian"));
  specs.push_back(make("nextcloud", C::kApplicationPlatform, 20, 700, 460, "debian"));
  specs.push_back(make("rabbitmq", C::kApplicationPlatform, 20, 180, 220, "ubuntu"));
  specs.push_back(make("solr", C::kApplicationPlatform, 20, 500, 380, "debian"));
  specs.push_back(make("sonarqube", C::kApplicationPlatform, 20, 550, 400, "alpine"));
  specs.push_back(make("wordpress", C::kApplicationPlatform, 20, 550, 400, "debian"));

  // Others.
  specs.push_back(make("chronograf", C::kOthers, 20, 230, 240, "alpine"));
  specs.push_back(make("docker", C::kOthers, 20, 220, 240, "alpine"));
  specs.push_back(make("gradle", C::kOthers, 20, 650, 440, "debian"));
  specs.push_back(make("hello-world", C::kOthers, 3, 0.02, 4, "scratch"));
  specs.push_back(make("logstash", C::kOthers, 20, 750, 470, "centos"));
  specs.push_back(make("maven", C::kOthers, 20, 450, 350, "debian"));
  specs.push_back(make("registry", C::kOthers, 20, 80, 140, "alpine"));
  specs.push_back(make("vault", C::kOthers, 20, 200, 230, "alpine"));

  return specs;
}

std::vector<SeriesSpec> small_corpus(int per_category, int versions) {
  std::vector<SeriesSpec> full = table1_corpus();
  std::vector<SeriesSpec> out;
  for (Category cat : all_categories()) {
    int taken = 0;
    for (const SeriesSpec& s : full) {
      if (s.category != cat || taken >= per_category) continue;
      SeriesSpec copy = s;
      copy.versions = std::min(copy.versions, versions);
      out.push_back(std::move(copy));
      ++taken;
    }
  }
  return out;
}

int total_images(const std::vector<SeriesSpec>& specs) {
  int total = 0;
  for (const SeriesSpec& s : specs) total += s.versions;
  return total;
}

}  // namespace gear::workload
