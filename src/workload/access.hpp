// Necessary-file access sets.
//
// Launching a container touches only a fraction of its image — the paper
// cites 6.4%–33.3% for on-demand formats (§II-D) and builds Gear around
// that fact. An AccessSet is the ordered list of regular files a container's
// startup task actually reads; deployment harnesses replay it against a
// mounted root filesystem and charge network/disk costs accordingly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/fingerprint.hpp"
#include "util/rng.hpp"
#include "vfs/file_tree.hpp"

namespace gear::workload {

/// One file access during container startup.
struct FileAccess {
  std::string path;        // path within the root filesystem
  std::uint64_t size = 0;  // file size in bytes
  Fingerprint fingerprint; // content fingerprint (for sharing analysis)
};

/// The set of files a container task reads at startup, in access order.
struct AccessSet {
  std::vector<FileAccess> files;

  std::uint64_t total_bytes() const;
  std::size_t file_count() const { return files.size(); }
};

/// Selection knobs for synthesizing an access set from an image tree.
struct AccessProfile {
  /// Fraction of the image's file *bytes* the task needs (0..1). The paper's
  /// range for real images is 0.064–0.333.
  double data_fraction = 0.25;
  /// Preference for shared/base files: probability that selection starts
  /// from the lexicographically stable "core" of the tree, which version
  /// neighbours have in common.
  double core_bias = 0.7;
  /// Task seed shared by all versions of a series (the paper's premise:
  /// versions of one image series run the same task, §II-D).
  std::uint64_t seed = 1;
  /// Per-image salt differentiating the non-core part of the selection
  /// between versions.
  std::uint64_t image_salt = 0;
};

/// Derives the access set of `tree` under `profile`.
///
/// Files are ranked deterministically (stable core files first, then
/// version-specific ones) and greedily taken until the byte budget is met,
/// with a seeded shuffle inside each rank band. The same file content
/// appearing in two versions of an image yields the same fingerprint, so
/// overlap between versions' access sets mirrors the redundancy the paper
/// measures in Fig. 2.
AccessSet derive_access_set(const vfs::FileTree& tree,
                            const AccessProfile& profile);

/// Redundancy between access sets: fraction of bytes in the union of the
/// sets that appear in more than one set (the Fig. 2 metric across a series).
double access_redundancy(const std::vector<AccessSet>& sets);

/// Bytes of `next` already covered by `prev` (fingerprint intersection) —
/// what a shared local cache saves when deploying `next` after `prev`.
std::uint64_t shared_bytes(const AccessSet& prev, const AccessSet& next);

}  // namespace gear::workload
