// Virtual block device for the Slacker baseline.
//
// Slacker (FAST'16) serves images as block devices over NFS/LVM: each
// container gets a fixed-size virtual device; data is pulled lazily at block
// granularity. This models the two properties the paper contrasts with Gear
// (§II-D, §V-E2): a fixed device size that cannot track the actual image
// size, and block-granular transfer — more, smaller objects than files, plus
// rounding waste for small files.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/error.hpp"
#include "vfs/file_tree.hpp"

namespace gear::slacker {

/// One file's placement on the device.
struct Extent {
  std::uint64_t first_block = 0;
  std::uint64_t block_count = 0;
  std::uint64_t file_bytes = 0;
};

class VirtualBlockDevice {
 public:
  /// Packs the regular files of a root filesystem onto a device of
  /// `capacity_blocks` blocks of `block_size` bytes each. Files are laid out
  /// contiguously in path order (mkfs-style allocation). Throws kOutOfSpace
  /// if the image does not fit — the fixed-size limitation the paper notes.
  static VirtualBlockDevice from_tree(const vfs::FileTree& root,
                                      std::uint64_t block_size,
                                      std::uint64_t capacity_blocks);

  std::uint64_t block_size() const noexcept { return block_size_; }
  std::uint64_t capacity_blocks() const noexcept { return capacity_blocks_; }
  std::uint64_t used_blocks() const noexcept { return used_blocks_; }
  std::uint64_t device_bytes() const { return block_size_ * capacity_blocks_; }

  /// Placement of a file; kNotFound for paths without block allocation.
  StatusOr<Extent> extent_of(const std::string& path) const;

  /// Content of one block (zero-padded tail for partial blocks).
  Bytes read_block(std::uint64_t block_index) const;

  /// Number of files packed.
  std::size_t file_count() const noexcept { return extents_.size(); }

 private:
  std::uint64_t block_size_ = 0;
  std::uint64_t capacity_blocks_ = 0;
  std::uint64_t used_blocks_ = 0;
  std::map<std::string, Extent> extents_;
  Bytes data_;  // packed blocks
};

}  // namespace gear::slacker
