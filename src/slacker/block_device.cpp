#include "slacker/block_device.hpp"

namespace gear::slacker {

VirtualBlockDevice VirtualBlockDevice::from_tree(const vfs::FileTree& root,
                                                 std::uint64_t block_size,
                                                 std::uint64_t capacity_blocks) {
  if (block_size == 0 || capacity_blocks == 0) {
    throw_error(ErrorCode::kInvalidArgument, "bad block device geometry");
  }
  VirtualBlockDevice dev;
  dev.block_size_ = block_size;
  dev.capacity_blocks_ = capacity_blocks;

  root.walk([&dev](const std::string& path, const vfs::FileNode& node) {
    if (!node.is_regular()) return;
    std::uint64_t blocks =
        (node.content().size() + dev.block_size_ - 1) / dev.block_size_;
    if (blocks == 0) blocks = 1;  // even empty files own one block (inode+data)
    if (dev.used_blocks_ + blocks > dev.capacity_blocks_) {
      throw_error(ErrorCode::kOutOfSpace,
                  "image exceeds fixed device size at " + path);
    }
    Extent e{dev.used_blocks_, blocks, node.content().size()};
    dev.extents_.emplace(path, e);
    dev.used_blocks_ += blocks;

    dev.data_.resize(dev.used_blocks_ * dev.block_size_, 0);
    std::copy(node.content().begin(), node.content().end(),
              dev.data_.begin() +
                  static_cast<std::ptrdiff_t>(e.first_block * dev.block_size_));
  });
  return dev;
}

StatusOr<Extent> VirtualBlockDevice::extent_of(const std::string& path) const {
  auto it = extents_.find(path);
  if (it == extents_.end()) {
    return {ErrorCode::kNotFound, "no extent for " + path};
  }
  return it->second;
}

Bytes VirtualBlockDevice::read_block(std::uint64_t block_index) const {
  if (block_index >= capacity_blocks_) {
    throw_error(ErrorCode::kInvalidArgument, "block index out of range");
  }
  Bytes out(block_size_, 0);
  std::uint64_t offset = block_index * block_size_;
  if (offset < data_.size()) {
    std::uint64_t n = std::min<std::uint64_t>(block_size_, data_.size() - offset);
    std::copy(data_.begin() + static_cast<std::ptrdiff_t>(offset),
              data_.begin() + static_cast<std::ptrdiff_t>(offset + n),
              out.begin());
  }
  return out;
}

}  // namespace gear::slacker
