// Slacker baseline: block-level lazy image distribution (paper §V-E2).
//
// The registry side keeps one virtual block device per image version
// (server-side snapshots/clones are free, as with Tintri VMstore). A client
// deploying a container clones the device (constant-time, metadata only) and
// then faults blocks in on demand over the link. Key contrasts with Gear:
//  * transfer unit is a block, so small files round up to whole blocks and
//    the object count is much higher than file count;
//  * fetched blocks are cached per image *version* — there is no
//    content-based sharing across versions or images, so every new version
//    re-downloads everything it touches.
#pragma once

#include <map>
#include <set>
#include <string>

#include "docker/client.hpp"  // RuntimeParams / DeployStats
#include "sim/disk.hpp"
#include "sim/network.hpp"
#include "slacker/block_device.hpp"
#include "workload/access.hpp"

namespace gear::slacker {

class SlackerRegistry {
 public:
  /// Registers an image version as a block device.
  void put_image(const std::string& reference, VirtualBlockDevice device);

  bool has_image(const std::string& reference) const;
  const VirtualBlockDevice& device(const std::string& reference) const;

  /// Server storage: devices are stored thin (used blocks only), and
  /// identical devices are NOT deduplicated across versions.
  std::uint64_t storage_bytes() const;

 private:
  std::map<std::string, VirtualBlockDevice> devices_;
};

class SlackerClient {
 public:
  SlackerClient(SlackerRegistry& registry, sim::NetworkLink& link,
                sim::DiskModel& disk, docker::RuntimeParams params = {});

  /// Deploys a container: snapshot-clone + NFS mount (cheap, constant), then
  /// replay `access`, faulting in missing blocks file-extent by file-extent.
  docker::DeployStats deploy(const std::string& reference,
                             const workload::AccessSet& access);

  /// Drops the per-version NFS client block cache (cold runs).
  void clear_cache();

  std::uint64_t blocks_fetched() const noexcept { return blocks_fetched_; }

 private:
  SlackerRegistry& registry_;
  sim::NetworkLink& link_;
  sim::DiskModel& disk_;
  docker::RuntimeParams params_;
  /// reference -> set of block indices already fetched (NFS client cache,
  /// shared between containers of the SAME image version only).
  std::map<std::string, std::set<std::uint64_t>> fetched_;
  std::uint64_t blocks_fetched_ = 0;
};

}  // namespace gear::slacker
