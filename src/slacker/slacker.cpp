#include "slacker/slacker.hpp"

namespace gear::slacker {

void SlackerRegistry::put_image(const std::string& reference,
                                VirtualBlockDevice device) {
  devices_.insert_or_assign(reference, std::move(device));
}

bool SlackerRegistry::has_image(const std::string& reference) const {
  return devices_.count(reference) != 0;
}

const VirtualBlockDevice& SlackerRegistry::device(
    const std::string& reference) const {
  auto it = devices_.find(reference);
  if (it == devices_.end()) {
    throw_error(ErrorCode::kNotFound, "no slacker image: " + reference);
  }
  return it->second;
}

std::uint64_t SlackerRegistry::storage_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [ref, dev] : devices_) {
    (void)ref;
    total += dev.used_blocks() * dev.block_size();
  }
  return total;
}

SlackerClient::SlackerClient(SlackerRegistry& registry, sim::NetworkLink& link,
                             sim::DiskModel& disk,
                             docker::RuntimeParams params)
    : registry_(registry), link_(link), disk_(disk), params_(params) {}

docker::DeployStats SlackerClient::deploy(const std::string& reference,
                                          const workload::AccessSet& access) {
  docker::DeployStats stats;
  const VirtualBlockDevice& dev = registry_.device(reference);

  // Pull phase: snapshot clone + loopback/NFS mount. No data moves; Slacker's
  // flattening/clone bookkeeping is a small constant plus one round trip.
  sim::SimTimer pull_timer(link_.clock());
  link_.request(4096);  // clone RPC + superblock read
  stats.pull.bytes_downloaded += 4096;
  link_.clock().advance(params_.mount_seconds);
  stats.pull.seconds = pull_timer.elapsed();

  // Run phase: start the container and fault blocks in as files are read.
  sim::SimTimer run_timer(link_.clock());
  link_.clock().advance(params_.startup_seconds);

  std::set<std::uint64_t>& cache = fetched_[reference];
  for (const workload::FileAccess& fa : access.files) {
    link_.clock().advance(params_.per_file_open_seconds);
    Extent e = dev.extent_of(fa.path).value();
    if (e.file_bytes != fa.size) {
      throw_error(ErrorCode::kInternal, "device size mismatch at " + fa.path);
    }
    // Fetch the extent's missing blocks as one contiguous request per run
    // of absent blocks (NFS readahead batches sequential blocks).
    std::uint64_t run_start = 0;
    std::uint64_t run_len = 0;
    auto flush = [&] {
      if (run_len == 0) return;
      std::uint64_t bytes = run_len * dev.block_size();
      link_.request(bytes);
      stats.run_bytes_downloaded += bytes;
      disk_.write(bytes);
      blocks_fetched_ += run_len;
      run_len = 0;
    };
    for (std::uint64_t b = e.first_block; b < e.first_block + e.block_count;
         ++b) {
      if (cache.count(b) != 0) {
        flush();
        continue;
      }
      cache.insert(b);
      if (run_len == 0) run_start = b;
      (void)run_start;
      ++run_len;
    }
    flush();
    disk_.read(fa.size);
  }
  stats.run_seconds = run_timer.elapsed();
  return stats;
}

void SlackerClient::clear_cache() { fetched_.clear(); }

}  // namespace gear::slacker
