// POSIX ustar archive writer/reader.
//
// Docker stores every image layer as a (compressed) tarball (paper §II-B).
// This module serializes a layer's diff tree into a ustar archive and back:
//  * regular files, directories, and symlinks map to their tar entry types;
//  * whiteouts use Docker's on-the-wire convention — a zero-length file named
//    ".wh.<name>" in the parent directory;
//  * opaque directories carry a ".wh..wh..opq" marker entry inside them.
#pragma once

#include "util/bytes.hpp"
#include "vfs/file_tree.hpp"

namespace gear::tar {

/// Serializes a layer tree into a ustar archive. Whiteout/opaque markers are
/// encoded with the Docker naming convention. Entry order is deterministic
/// (depth-first, name-ordered), so equal trees produce byte-equal archives —
/// the property layer digests rely on.
Bytes archive_tree(const vfs::FileTree& tree);

/// Parses a ustar archive produced by archive_tree (or any compatible ustar
/// stream limited to files/dirs/symlinks) back into a layer tree.
/// Throws Error(kCorruptData) on malformed archives.
vfs::FileTree extract_tree(BytesView archive);

/// Number of 512-byte blocks (headers + padded payloads + trailer) the
/// archive of `tree` will occupy; exposed for capacity planning in tests.
std::uint64_t archive_block_count(const vfs::FileTree& tree);

}  // namespace gear::tar
