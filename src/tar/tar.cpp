#include "tar/tar.hpp"

#include <cstring>

#include "util/error.hpp"

namespace gear::tar {
namespace {

constexpr std::size_t kBlockSize = 512;
constexpr char kWhiteoutPrefix[] = ".wh.";
constexpr char kOpaqueMarker[] = ".wh..wh..opq";

struct Header {
  char name[100];
  char mode[8];
  char uid[8];
  char gid[8];
  char size[12];
  char mtime[12];
  char chksum[8];
  char typeflag;
  char linkname[100];
  char magic[6];
  char version[2];
  char uname[32];
  char gname[32];
  char devmajor[8];
  char devminor[8];
  char prefix[155];
  char padding[12];
};
static_assert(sizeof(Header) == kBlockSize, "ustar header must be 512 bytes");

void write_octal(char* field, std::size_t len, std::uint64_t value) {
  // len-1 octal digits followed by NUL, zero padded.
  for (std::size_t i = len - 1; i-- > 0;) {
    field[i] = static_cast<char>('0' + (value & 7));
    value >>= 3;
  }
  field[len - 1] = '\0';
  if (value != 0) {
    throw_error(ErrorCode::kInvalidArgument, "tar: numeric field overflow");
  }
}

std::uint64_t read_octal(const char* field, std::size_t len) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < len && field[i] != '\0' && field[i] != ' '; ++i) {
    if (field[i] < '0' || field[i] > '7') {
      throw_error(ErrorCode::kCorruptData, "tar: bad octal digit");
    }
    v = (v << 3) | static_cast<std::uint64_t>(field[i] - '0');
  }
  return v;
}

void set_path(Header& h, const std::string& path) {
  if (path.size() <= sizeof(h.name)) {
    std::memcpy(h.name, path.data(), path.size());
    return;
  }
  // Split into prefix/name at a '/' so that prefix <= 155 and name <= 100.
  std::size_t split = path.rfind('/', sizeof(h.prefix));
  if (split == std::string::npos || path.size() - split - 1 > sizeof(h.name)) {
    throw_error(ErrorCode::kInvalidArgument, "tar: path too long: " + path);
  }
  std::memcpy(h.prefix, path.data(), split);
  std::memcpy(h.name, path.data() + split + 1, path.size() - split - 1);
}

std::string get_path(const Header& h) {
  auto field_str = [](const char* f, std::size_t n) {
    std::size_t len = 0;
    while (len < n && f[len] != '\0') ++len;
    return std::string(f, len);
  };
  std::string name = field_str(h.name, sizeof(h.name));
  std::string prefix = field_str(h.prefix, sizeof(h.prefix));
  if (prefix.empty()) return name;
  return prefix + "/" + name;
}

void finalize_checksum(Header& h) {
  std::memset(h.chksum, ' ', sizeof(h.chksum));
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(&h);
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i < kBlockSize; ++i) sum += bytes[i];
  // 6 octal digits, NUL, space (historical ustar layout).
  for (std::size_t i = 6; i-- > 0;) {
    h.chksum[i] = static_cast<char>('0' + (sum & 7));
    sum >>= 3;
  }
  h.chksum[6] = '\0';
  h.chksum[7] = ' ';
}

bool verify_checksum(const Header& h) {
  Header copy = h;
  std::memset(copy.chksum, ' ', sizeof(copy.chksum));
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(&copy);
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i < kBlockSize; ++i) sum += bytes[i];
  return read_octal(h.chksum, sizeof(h.chksum)) == sum;
}

void emit_entry(Bytes& out, const std::string& path, char typeflag,
                const vfs::Metadata& meta, BytesView content,
                const std::string& linkname) {
  Header h{};
  set_path(h, path);
  write_octal(h.mode, sizeof(h.mode), meta.mode);
  write_octal(h.uid, sizeof(h.uid), meta.uid);
  write_octal(h.gid, sizeof(h.gid), meta.gid);
  write_octal(h.size, sizeof(h.size), typeflag == '0' ? content.size() : 0);
  write_octal(h.mtime, sizeof(h.mtime), meta.mtime);
  h.typeflag = typeflag;
  if (!linkname.empty()) {
    if (linkname.size() > sizeof(h.linkname)) {
      throw_error(ErrorCode::kInvalidArgument, "tar: link target too long");
    }
    std::memcpy(h.linkname, linkname.data(), linkname.size());
  }
  std::memcpy(h.magic, "ustar", 6);
  std::memcpy(h.version, "00", 2);
  finalize_checksum(h);

  const auto* hbytes = reinterpret_cast<const std::uint8_t*>(&h);
  out.insert(out.end(), hbytes, hbytes + kBlockSize);
  if (typeflag == '0' && !content.empty()) {
    append(out, content);
    std::size_t rem = content.size() % kBlockSize;
    if (rem != 0) out.insert(out.end(), kBlockSize - rem, 0);
  }
}

void emit_node(Bytes& out, const std::string& path, const vfs::FileNode& node) {
  switch (node.type()) {
    case vfs::NodeType::kWhiteout: {
      // ".wh.<name>" zero-length file in the parent directory.
      std::size_t slash = path.rfind('/');
      std::string wh = slash == std::string::npos
                           ? std::string(kWhiteoutPrefix) + path
                           : path.substr(0, slash + 1) + kWhiteoutPrefix +
                                 path.substr(slash + 1);
      emit_entry(out, wh, '0', vfs::Metadata{}, {}, "");
      return;
    }
    case vfs::NodeType::kDirectory: {
      emit_entry(out, path + "/", '5', node.metadata(), {}, "");
      if (node.opaque()) {
        emit_entry(out, path + "/" + kOpaqueMarker, '0', vfs::Metadata{}, {},
                   "");
      }
      for (const auto& [name, child] : node.children()) {
        emit_node(out, path + "/" + name, *child);
      }
      return;
    }
    case vfs::NodeType::kRegular:
      emit_entry(out, path, '0', node.metadata(), node.content(), "");
      return;
    case vfs::NodeType::kSymlink:
      emit_entry(out, path, '2', node.metadata(), {}, node.link_target());
      return;
    case vfs::NodeType::kFingerprint:
      // Index stubs never travel inside layer tarballs; the Gear index uses
      // the tree serializer instead.
      throw_error(ErrorCode::kUnsupported,
                  "tar: fingerprint stubs cannot be archived");
  }
}

}  // namespace

Bytes archive_tree(const vfs::FileTree& tree) {
  Bytes out;
  for (const auto& [name, child] : tree.root().children()) {
    emit_node(out, name, *child);
  }
  // Trailer: two zero blocks.
  out.insert(out.end(), 2 * kBlockSize, 0);
  return out;
}

vfs::FileTree extract_tree(BytesView archive) {
  if (archive.size() % kBlockSize != 0) {
    throw_error(ErrorCode::kCorruptData, "tar: size not block-aligned");
  }
  vfs::FileTree tree;
  std::size_t pos = 0;
  while (pos + kBlockSize <= archive.size()) {
    Header h;
    std::memcpy(&h, archive.data() + pos, kBlockSize);
    pos += kBlockSize;

    // End-of-archive: an all-zero block.
    bool all_zero = true;
    const auto* raw = reinterpret_cast<const std::uint8_t*>(&h);
    for (std::size_t i = 0; i < kBlockSize && all_zero; ++i) {
      all_zero = raw[i] == 0;
    }
    if (all_zero) break;

    if (std::memcmp(h.magic, "ustar", 5) != 0) {
      throw_error(ErrorCode::kCorruptData, "tar: bad magic");
    }
    if (!verify_checksum(h)) {
      throw_error(ErrorCode::kCorruptData, "tar: header checksum mismatch");
    }

    std::string path = get_path(h);
    while (!path.empty() && path.back() == '/') path.pop_back();
    std::uint64_t size = read_octal(h.size, sizeof(h.size));
    vfs::Metadata meta;
    meta.mode = static_cast<std::uint32_t>(read_octal(h.mode, sizeof(h.mode)));
    meta.uid = static_cast<std::uint32_t>(read_octal(h.uid, sizeof(h.uid)));
    meta.gid = static_cast<std::uint32_t>(read_octal(h.gid, sizeof(h.gid)));
    meta.mtime = read_octal(h.mtime, sizeof(h.mtime));

    Bytes content;
    if (h.typeflag == '0' || h.typeflag == '\0') {
      if (pos + size > archive.size()) {
        throw_error(ErrorCode::kCorruptData, "tar: truncated file payload");
      }
      content.assign(archive.begin() + pos, archive.begin() + pos + size);
      pos += (size + kBlockSize - 1) / kBlockSize * kBlockSize;
    }

    // Decode whiteout / opaque conventions back into node types.
    std::size_t slash = path.rfind('/');
    std::string basename =
        slash == std::string::npos ? path : path.substr(slash + 1);

    if (basename == kOpaqueMarker) {
      std::string dir = path.substr(0, slash);
      vfs::FileNode* node = tree.lookup(dir);
      if (node == nullptr || !node->is_directory()) {
        throw_error(ErrorCode::kCorruptData,
                    "tar: opaque marker without directory");
      }
      node->set_opaque(true);
      continue;
    }
    if (basename.rfind(kWhiteoutPrefix, 0) == 0) {
      std::string target_name = basename.substr(std::strlen(kWhiteoutPrefix));
      std::string target = slash == std::string::npos
                               ? target_name
                               : path.substr(0, slash + 1) + target_name;
      tree.add_whiteout(target);
      continue;
    }

    switch (h.typeflag) {
      case '0':
      case '\0':
        tree.add_file(path, std::move(content), meta);
        break;
      case '5':
        tree.add_directory(path, meta);
        break;
      case '2': {
        std::size_t len = 0;
        while (len < sizeof(h.linkname) && h.linkname[len] != '\0') ++len;
        tree.add_symlink(path, std::string(h.linkname, len), meta);
        break;
      }
      default:
        throw_error(ErrorCode::kUnsupported,
                    std::string("tar: unsupported entry type '") +
                        h.typeflag + "'");
    }
  }
  return tree;
}

std::uint64_t archive_block_count(const vfs::FileTree& tree) {
  return archive_tree(tree).size() / kBlockSize;
}

}  // namespace gear::tar
