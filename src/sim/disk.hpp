// Seek + throughput disk model.
//
// Fig. 6 of the paper shows image conversion time dominated by file-system
// traversal and rebuild on an HDD, and reports a 65.7% reduction when the
// same conversion runs on an SSD. The model charges a per-object seek cost
// plus bytes/throughput, which reproduces both the size-proportional trend
// and the HDD/SSD gap.
#pragma once

#include <cstdint>

#include "sim/clock.hpp"

namespace gear::sim {

/// Cumulative disk accounting.
struct DiskStats {
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t read_ops = 0;
  std::uint64_t write_ops = 0;
};

class DiskModel {
 public:
  DiskModel(SimClock& clock, double seek_seconds, double read_mbps,
            double write_mbps);

  /// Western Digital WD60PURX-class HDD (the paper's testbed disk):
  /// ~8 ms average access, ~150 MB/s sequential.
  static DiskModel hdd(SimClock& clock);

  /// SATA SSD: ~0.08 ms access, ~500 MB/s.
  static DiskModel ssd(SimClock& clock);

  /// Disk whose throughput is scaled by the corpus byte scale (seek times
  /// stay real), matching sim::scaled_link's convention so scaled-corpus
  /// experiments keep real-corpus time ratios.
  static DiskModel scaled_hdd(SimClock& clock, double byte_scale);
  static DiskModel scaled_ssd(SimClock& clock, double byte_scale);

  /// Reads one object of `bytes`, paying one seek + transfer. Returns the
  /// elapsed seconds.
  double read(std::uint64_t bytes);

  /// Writes one object of `bytes`.
  double write(std::uint64_t bytes);

  /// Metadata-only operation (directory lookup, inode update): one seek.
  double touch();

  const DiskStats& stats() const noexcept { return stats_; }
  double seek_seconds() const noexcept { return seek_; }

 private:
  SimClock& clock_;
  double seek_;
  double read_mbps_;
  double write_mbps_;
  DiskStats stats_;
};

}  // namespace gear::sim
