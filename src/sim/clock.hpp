// Deterministic simulated clock.
//
// The paper measures deployment time on two servers joined by links of
// 904/100/20/5 Mbps. This repo replays the same experiments against a
// simulated clock: every modeled cost (network transfer, disk access,
// process startup) advances the clock explicitly, so results are exact,
// repeatable, and independent of the host machine.
#pragma once

#include <cstdint>

namespace gear::sim {

class SimClock {
 public:
  /// Current simulated time in seconds since simulation start.
  double now() const noexcept { return now_; }

  /// Advances the clock by `seconds` (must be >= 0).
  void advance(double seconds);

  /// Resets to t=0.
  void reset() noexcept { now_ = 0.0; }

 private:
  double now_ = 0.0;
};

/// RAII measurement of a simulated interval.
class SimTimer {
 public:
  explicit SimTimer(const SimClock& clock)
      : clock_(clock), start_(clock.now()) {}

  double elapsed() const noexcept { return clock_.now() - start_; }

 private:
  const SimClock& clock_;
  double start_;
};

}  // namespace gear::sim
