// Bandwidth- and latency-modeled network link.
//
// Models the registry<->client link: each request pays one round-trip plus a
// fixed per-request service overhead, and the payload streams at the link
// bandwidth. This captures exactly the two effects the paper's deployment
// experiments depend on: total bytes over bandwidth (dominant for Docker's
// full-image pulls) and per-request cost (dominant for fine-grained lazy
// pulls — the reason Slacker degrades at low bandwidth, §V-E2).
#pragma once

#include <cstdint>

#include "sim/clock.hpp"

namespace gear::sim {

/// Cumulative transfer accounting (monotonic; never reset by experiments so
/// benches can diff before/after snapshots).
struct NetworkStats {
  std::uint64_t bytes_transferred = 0;
  std::uint64_t requests = 0;

  friend NetworkStats operator-(const NetworkStats& a, const NetworkStats& b) {
    return {a.bytes_transferred - b.bytes_transferred,
            a.requests - b.requests};
  }
};

class NetworkLink {
 public:
  /// `bandwidth_mbps`: link speed in megabits/second.
  /// `rtt_seconds`: request round-trip latency.
  /// `request_overhead_seconds`: fixed server-side handling cost per request
  /// (connection setup, object lookup).
  NetworkLink(SimClock& clock, double bandwidth_mbps, double rtt_seconds,
              double request_overhead_seconds);

  /// Performs one request transferring `payload_bytes`, advancing the clock
  /// by rtt + overhead + payload/bandwidth. Returns the elapsed seconds.
  double request(std::uint64_t payload_bytes);

  /// Transfers `payload_bytes` as `n_requests` pipelined requests: latency is
  /// paid once, per-request overhead per request. Models HTTP keep-alive
  /// batched fetches.
  double pipelined(std::uint64_t payload_bytes, std::uint64_t n_requests);

  /// Pure transmission time of `bytes` at link bandwidth (no latency).
  double transmission_time(std::uint64_t bytes) const;

  double bandwidth_mbps() const noexcept { return bandwidth_mbps_; }
  double rtt() const noexcept { return rtt_; }
  const NetworkStats& stats() const noexcept { return stats_; }
  SimClock& clock() noexcept { return clock_; }

 private:
  SimClock& clock_;
  double bandwidth_mbps_;
  double rtt_;
  double request_overhead_;
  NetworkStats stats_;
};

/// Link whose bandwidth is scaled by the corpus byte scale. When the
/// synthetic corpus shrinks every byte quantity by `byte_scale`, scaling the
/// bandwidth by the same factor preserves all transfer-time ratios (a 390 MB
/// image over 904 Mbps takes exactly as long as its 390 KB scaled twin over
/// 0.904 Mbps), while latencies and per-request costs stay real.
NetworkLink scaled_link(SimClock& clock, double real_mbps, double byte_scale,
                        double rtt_seconds = 0.0005,
                        double request_overhead_seconds = 0.0003);

/// Parameter preset of one hop class in a multi-site topology: bandwidth
/// plus the latency/overhead pair a link of that class pays per request.
struct LinkProfile {
  double mbps = 100.0;
  double rtt_seconds = 0.0005;
  double request_overhead_seconds = 0.0003;
};

/// Site-local LAN hop: gigabit-class, sub-millisecond round trips.
LinkProfile lan_profile(double mbps = 1000.0);

/// Wide-area hop between edge sites (EdgePier's 5-100 Mbps inter-site
/// links): slow, tens of milliseconds of latency, costlier per-request
/// handling than a rack-local fetch.
LinkProfile wan_profile(double mbps = 50.0);

/// scaled_link over a profile (bandwidth scaled, latencies real).
NetworkLink scaled_link(SimClock& clock, const LinkProfile& profile,
                        double byte_scale);

}  // namespace gear::sim
