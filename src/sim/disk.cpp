#include "sim/disk.hpp"

#include "util/error.hpp"

namespace gear::sim {

DiskModel::DiskModel(SimClock& clock, double seek_seconds, double read_mbps,
                     double write_mbps)
    : clock_(clock),
      seek_(seek_seconds),
      read_mbps_(read_mbps),
      write_mbps_(write_mbps) {
  if (seek_seconds < 0 || read_mbps <= 0 || write_mbps <= 0) {
    throw_error(ErrorCode::kInvalidArgument, "DiskModel: bad parameters");
  }
}

DiskModel DiskModel::hdd(SimClock& clock) {
  return DiskModel(clock, 8e-3, 150.0, 140.0);
}

DiskModel DiskModel::ssd(SimClock& clock) {
  return DiskModel(clock, 8e-5, 520.0, 480.0);
}

DiskModel DiskModel::scaled_hdd(SimClock& clock, double byte_scale) {
  return DiskModel(clock, 8e-3, 150.0 * byte_scale, 140.0 * byte_scale);
}

DiskModel DiskModel::scaled_ssd(SimClock& clock, double byte_scale) {
  return DiskModel(clock, 8e-5, 520.0 * byte_scale, 480.0 * byte_scale);
}

double DiskModel::read(std::uint64_t bytes) {
  double elapsed = seek_ + static_cast<double>(bytes) / (read_mbps_ * 1e6);
  clock_.advance(elapsed);
  stats_.bytes_read += bytes;
  stats_.read_ops += 1;
  return elapsed;
}

double DiskModel::write(std::uint64_t bytes) {
  double elapsed = seek_ + static_cast<double>(bytes) / (write_mbps_ * 1e6);
  clock_.advance(elapsed);
  stats_.bytes_written += bytes;
  stats_.write_ops += 1;
  return elapsed;
}

double DiskModel::touch() {
  clock_.advance(seek_);
  stats_.read_ops += 1;
  return seek_;
}

}  // namespace gear::sim
