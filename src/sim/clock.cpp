#include "sim/clock.hpp"

#include "util/error.hpp"

namespace gear::sim {

void SimClock::advance(double seconds) {
  if (seconds < 0) {
    throw_error(ErrorCode::kInvalidArgument, "SimClock::advance(negative)");
  }
  now_ += seconds;
}

}  // namespace gear::sim
