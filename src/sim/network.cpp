#include "sim/network.hpp"

#include "util/error.hpp"

namespace gear::sim {

NetworkLink::NetworkLink(SimClock& clock, double bandwidth_mbps,
                         double rtt_seconds,
                         double request_overhead_seconds)
    : clock_(clock),
      bandwidth_mbps_(bandwidth_mbps),
      rtt_(rtt_seconds),
      request_overhead_(request_overhead_seconds) {
  if (bandwidth_mbps <= 0 || rtt_seconds < 0 || request_overhead_seconds < 0) {
    throw_error(ErrorCode::kInvalidArgument, "NetworkLink: bad parameters");
  }
}

double NetworkLink::transmission_time(std::uint64_t bytes) const {
  return static_cast<double>(bytes) * 8.0 / (bandwidth_mbps_ * 1e6);
}

double NetworkLink::request(std::uint64_t payload_bytes) {
  double elapsed = rtt_ + request_overhead_ + transmission_time(payload_bytes);
  clock_.advance(elapsed);
  stats_.bytes_transferred += payload_bytes;
  stats_.requests += 1;
  return elapsed;
}

double NetworkLink::pipelined(std::uint64_t payload_bytes,
                              std::uint64_t n_requests) {
  if (n_requests == 0) {
    throw_error(ErrorCode::kInvalidArgument, "pipelined: zero requests");
  }
  double elapsed = rtt_ +
                   request_overhead_ * static_cast<double>(n_requests) +
                   transmission_time(payload_bytes);
  clock_.advance(elapsed);
  stats_.bytes_transferred += payload_bytes;
  stats_.requests += n_requests;
  return elapsed;
}

NetworkLink scaled_link(SimClock& clock, double real_mbps, double byte_scale,
                        double rtt_seconds,
                        double request_overhead_seconds) {
  if (byte_scale <= 0 || byte_scale > 1.0) {
    throw_error(ErrorCode::kInvalidArgument, "scaled_link: bad byte scale");
  }
  return NetworkLink(clock, real_mbps * byte_scale, rtt_seconds,
                     request_overhead_seconds);
}

LinkProfile lan_profile(double mbps) {
  return LinkProfile{mbps, /*rtt_seconds=*/0.0002,
                     /*request_overhead_seconds=*/0.0001};
}

LinkProfile wan_profile(double mbps) {
  return LinkProfile{mbps, /*rtt_seconds=*/0.04,
                     /*request_overhead_seconds=*/0.001};
}

NetworkLink scaled_link(SimClock& clock, const LinkProfile& profile,
                        double byte_scale) {
  return scaled_link(clock, profile.mbps, byte_scale, profile.rtt_seconds,
                     profile.request_overhead_seconds);
}

}  // namespace gear::sim
