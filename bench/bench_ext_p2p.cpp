// Extension bench: cooperative (P2P) Gear-file distribution (§VI-B).
//
// Scenario: a rack of 8 nodes cold-starts the same service image (scale-out
// burst). Without cooperation every node pulls every Gear file over the
// WAN; with the peer tracker one WAN copy fans out over the cluster LAN.
#include <cstdio>

#include "bench_common.hpp"
#include "gear/converter.hpp"
#include "p2p/cluster.hpp"

using namespace gear;

int main() {
  bench::Env e = bench::env();
  bench::print_title("Extension: P2P cold-start of a cluster (paper §VI-B)",
                     e);

  workload::CorpusGenerator gen(e.seed, e.scale);
  workload::SeriesSpec spec;
  for (const auto& s : workload::table1_corpus()) {
    if (s.name == "node") spec = s;  // the biggest web image
  }

  docker::DockerRegistry index_registry;
  GearRegistry file_registry;
  docker::Image image = gen.generate_image(spec, 0);
  push_gear_image(GearConverter().convert(image).image, index_registry,
                  file_registry);
  workload::AccessSet access = gen.access_set(spec, 0);

  const std::size_t kNodes = 8;

  // Baseline: independent nodes.
  std::uint64_t solo_wan = 0;
  double solo_time = 0;
  for (std::size_t i = 0; i < kNodes; ++i) {
    sim::SimClock c;
    sim::NetworkLink l = sim::scaled_link(c, 100.0, e.scale);
    sim::DiskModel d = sim::DiskModel::scaled_ssd(c, e.scale);
    GearClient client(index_registry, file_registry, l, d);
    solo_time += client.deploy("node:v0", access).total_seconds();
    solo_wan += l.stats().bytes_transferred;
  }

  // Cooperative cluster.
  p2p::Cluster::Params params;
  params.nodes = kNodes;
  params.wan_mbps = 100.0;
  params.lan_mbps = 1000.0;
  params.byte_scale = e.scale;
  p2p::Cluster cluster(index_registry, file_registry, params);
  double coop_time = 0;
  for (std::size_t i = 0; i < kNodes; ++i) {
    coop_time += cluster.deploy(i, "node:v0", access).total_seconds();
  }

  std::vector<int> w = {26, 14, 14, 14};
  bench::print_row({"strategy", "wan egress", "lan traffic", "total time"},
                   w);
  bench::print_rule(w);
  bench::print_row({"independent nodes", format_size(solo_wan), "0 B",
                    format_duration(solo_time)},
                   w);
  bench::print_row({"cooperative (tracker+lan)",
                    format_size(cluster.wan_bytes()),
                    format_size(cluster.lan_bytes()),
                    format_duration(coop_time)},
                   w);

  double reduction = cluster.wan_bytes() > 0
                         ? static_cast<double>(solo_wan) /
                               static_cast<double>(cluster.wan_bytes())
                         : 0;
  std::printf("\nwan egress reduction: %.1fx over %zu nodes "
              "(peer hits: %llu, lan bursts: %llu)\n",
              reduction, kNodes,
              static_cast<unsigned long long>(cluster.peer_hits()),
              static_cast<unsigned long long>(cluster.lan_bursts()));
  std::printf("expected shape: cooperative wan egress ~ 1/N of independent; "
              "deployment also faster (lan >> wan)\n");

  // Exit-code bars: cooperation must at least halve WAN egress over the
  // burst, every follower node must hit peers, and the saved WAN bytes must
  // actually move over the LAN instead. (This deploy path replays accesses
  // per file, so bursts stay 0 here — the batched fan-out is exercised and
  // asserted by the cluster/topology test suites and bench_ext_edge.)
  bool reduction_ok = reduction >= 2.0;
  bool hits_ok = cluster.peer_hits() >= kNodes - 1;
  bool lan_ok = cluster.lan_bytes() > 0;
  std::printf("wan reduction >= 2x: %s; peer hits >= %zu: %s; "
              "lan traffic present: %s\n",
              reduction_ok ? "ok" : "BAR FAILED", kNodes - 1,
              hits_ok ? "ok" : "BAR FAILED", lan_ok ? "ok" : "BAR FAILED");

  Json doc;
  doc["bench"] = "ext_p2p";
  doc["scale"] = e.scale;
  doc["seed"] = e.seed;
  doc["nodes"] = static_cast<std::int64_t>(kNodes);
  doc["solo_wan_bytes"] = solo_wan;
  doc["coop_wan_bytes"] = cluster.wan_bytes();
  doc["lan_bytes"] = cluster.lan_bytes();
  doc["lan_bursts"] = cluster.lan_bursts();
  doc["peer_hits"] = cluster.peer_hits();
  doc["solo_time_s"] = solo_time;
  doc["coop_time_s"] = coop_time;
  doc["wan_reduction"] = reduction;
  doc["reduction_ok"] = reduction_ok;
  doc["hits_ok"] = hits_ok;
  doc["lan_ok"] = lan_ok;
  bench::write_json("BENCH_p2p.json", doc);

  if (!reduction_ok || !hits_ok || !lan_ok) {
    std::printf("\nFAILED: p2p bars not met\n");
    return 1;
  }
  std::printf("\nall p2p bars met\n");
  return 0;
}
