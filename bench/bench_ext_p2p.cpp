// Extension bench: cooperative (P2P) Gear-file distribution (§VI-B).
//
// Scenario: a rack of 8 nodes cold-starts the same service image (scale-out
// burst). Without cooperation every node pulls every Gear file over the
// WAN; with the peer tracker one WAN copy fans out over the cluster LAN.
#include <cstdio>

#include "bench_common.hpp"
#include "gear/converter.hpp"
#include "p2p/cluster.hpp"

using namespace gear;

int main() {
  bench::Env e = bench::env();
  bench::print_title("Extension: P2P cold-start of a cluster (paper §VI-B)",
                     e);

  workload::CorpusGenerator gen(e.seed, e.scale);
  workload::SeriesSpec spec;
  for (const auto& s : workload::table1_corpus()) {
    if (s.name == "node") spec = s;  // the biggest web image
  }

  docker::DockerRegistry index_registry;
  GearRegistry file_registry;
  docker::Image image = gen.generate_image(spec, 0);
  push_gear_image(GearConverter().convert(image).image, index_registry,
                  file_registry);
  workload::AccessSet access = gen.access_set(spec, 0);

  const std::size_t kNodes = 8;

  // Baseline: independent nodes.
  std::uint64_t solo_wan = 0;
  double solo_time = 0;
  for (std::size_t i = 0; i < kNodes; ++i) {
    sim::SimClock c;
    sim::NetworkLink l = sim::scaled_link(c, 100.0, e.scale);
    sim::DiskModel d = sim::DiskModel::scaled_ssd(c, e.scale);
    GearClient client(index_registry, file_registry, l, d);
    solo_time += client.deploy("node:v0", access).total_seconds();
    solo_wan += l.stats().bytes_transferred;
  }

  // Cooperative cluster.
  p2p::Cluster::Params params;
  params.nodes = kNodes;
  params.wan_mbps = 100.0;
  params.lan_mbps = 1000.0;
  params.byte_scale = e.scale;
  p2p::Cluster cluster(index_registry, file_registry, params);
  double coop_time = 0;
  for (std::size_t i = 0; i < kNodes; ++i) {
    coop_time += cluster.deploy(i, "node:v0", access).total_seconds();
  }

  std::vector<int> w = {26, 14, 14, 14};
  bench::print_row({"strategy", "wan egress", "lan traffic", "total time"},
                   w);
  bench::print_rule(w);
  bench::print_row({"independent nodes", format_size(solo_wan), "0 B",
                    format_duration(solo_time)},
                   w);
  bench::print_row({"cooperative (tracker+lan)",
                    format_size(cluster.wan_bytes()),
                    format_size(cluster.lan_bytes()),
                    format_duration(coop_time)},
                   w);

  std::printf("\nwan egress reduction: %.1fx over %zu nodes "
              "(peer hits: %llu)\n",
              static_cast<double>(solo_wan) /
                  static_cast<double>(cluster.wan_bytes()),
              kNodes, static_cast<unsigned long long>(cluster.peer_hits()));
  std::printf("expected shape: cooperative wan egress ~ 1/N of independent; "
              "deployment also faster (lan >> wan)\n");
  return 0;
}
