// Shared plumbing for the reproduction benches (bench_table2..bench_fig11).
//
// Every bench binary regenerates one table/figure of the paper. They share:
//  * the corpus scale convention — all byte quantities are scaled by
//    GEAR_SCALE (default 1/1000 of the real ~370 GB corpus) and network/disk
//    throughputs are scaled identically, so time and ratio shapes match the
//    paper while runs fit in memory (see DESIGN.md §2);
//  * environment knobs: GEAR_SCALE, GEAR_SEED, GEAR_FAST=1 (reduced corpus
//    for smoke runs);
//  * aligned table printing.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "docker/registry.hpp"
#include "gear/client.hpp"
#include "gear/converter.hpp"
#include "util/file_io.hpp"
#include "util/format.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"
#include "workload/generator.hpp"
#include "workload/spec.hpp"

namespace gear::bench {

struct Env {
  double scale = 0.001;
  std::uint64_t seed = 42;
  bool fast = false;
};

inline Env env() {
  Env e;
  if (const char* s = std::getenv("GEAR_SCALE")) e.scale = std::atof(s);
  if (const char* s = std::getenv("GEAR_SEED")) {
    e.seed = static_cast<std::uint64_t>(std::atoll(s));
  }
  if (const char* s = std::getenv("GEAR_FAST")) e.fast = std::atoi(s) != 0;
  if (e.scale <= 0 || e.scale > 1) e.scale = 0.001;
  return e;
}

/// Corpus for this run: full Table I, or a reduced set with GEAR_FAST=1.
inline std::vector<workload::SeriesSpec> corpus(const Env& e) {
  if (e.fast) return workload::small_corpus(2, 5);
  return workload::table1_corpus();
}

inline void print_title(const std::string& title, const Env& e) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("corpus scale %.5f (bytes and bandwidths scaled together; "
              "seed %llu%s)\n\n",
              e.scale, static_cast<unsigned long long>(e.seed),
              e.fast ? ", FAST subset" : "");
}

inline void print_row(const std::vector<std::string>& cells,
                      const std::vector<int>& widths) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    int w = i < widths.size() ? widths[i] : 12;
    line += (i == 0 ? pad_right(cells[i], static_cast<std::size_t>(w))
                    : pad_left(cells[i], static_cast<std::size_t>(w)));
    line += "  ";
  }
  std::printf("%s\n", line.c_str());
}

inline void print_rule(const std::vector<int>& widths) {
  std::size_t total = 0;
  for (int w : widths) total += static_cast<std::size_t>(w) + 2;
  std::printf("%s\n", std::string(total, '-').c_str());
}

/// Worker budget for the parallel leg of a bench (GEAR_WORKERS, default 4).
/// Benches always run both a serial and a parallel leg so the wall-clock
/// delta — and the identical simulated results — are visible in one run.
inline std::size_t parallel_workers() {
  if (const char* s = std::getenv("GEAR_WORKERS")) {
    long v = std::atol(s);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return 4;
}

/// Real (wall-clock) seconds spent in `fn()` — distinct from the simulated
/// clocks, which are deterministic and worker-count independent.
template <typename Fn>
inline double wall_seconds(Fn&& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Nearest-rank percentile (p in [0, 100]) of a sample set; 0 when empty.
/// Shared by the latency-reporting legs (fig8 registry concurrency, the
/// fleet load harness) so their p50/p99 definitions match exactly.
inline double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  double rank = p / 100.0 * static_cast<double>(xs.size());
  std::size_t idx = rank <= 1.0 ? 0 : static_cast<std::size_t>(rank + 0.5) - 1;
  if (idx >= xs.size()) idx = xs.size() - 1;
  return xs[idx];
}

/// Dumps a bench-result document to `path` (cwd) for downstream tooling.
inline void write_json(const std::string& path, const Json& doc) {
  std::string text = doc.dump();
  text += '\n';
  write_file_bytes(path, to_bytes(text));
  std::printf("wrote %s\n", path.c_str());
}

/// Un-scales a scaled byte count back to "paper-equivalent" units for
/// side-by-side display with the published numbers.
inline std::string full_scale_size(std::uint64_t scaled_bytes, double scale) {
  return format_size(
      static_cast<std::uint64_t>(static_cast<double>(scaled_bytes) / scale));
}

/// Converts and pushes every version of every series into the given
/// registries; optionally also pushes the classic images.
inline void ingest_corpus(const std::vector<workload::SeriesSpec>& specs,
                          const workload::CorpusGenerator& gen,
                          docker::DockerRegistry* classic,
                          docker::DockerRegistry* index_registry,
                          GearRegistry* file_registry) {
  GearConverter converter;
  for (const auto& spec : specs) {
    for (int v = 0; v < spec.versions; ++v) {
      docker::Image image = gen.generate_image(spec, v);
      if (classic != nullptr) classic->push_image(image);
      if (index_registry != nullptr && file_registry != nullptr) {
        ConversionResult conv = converter.convert(image);
        push_gear_image(conv.image, *index_registry, *file_registry);
      }
    }
  }
}

}  // namespace gear::bench
