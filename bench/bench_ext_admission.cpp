// Extension bench: host-wide admission control (gear/admission).
//
// Concurrent deployments on one host each obey their own per-client
// in-flight cap, but nothing bounds their SUM: 32 simultaneous deploys can
// stage 32 caps' worth of download+decompression buffers at once. The
// HostBudget meters every staging buffer against one shared byte budget and
// admits waiting deploys smallest-remaining-bytes-first, so short deploys
// slip past long ones instead of queueing behind them.
//
// Method: a 32-client deploy storm — one GearClient per thread, each
// deploying and prefetching its own image (image sizes deliberately spread
// so "smallest remaining" is meaningful), all clients sharing one Gear
// Registry and one HostBudget — run twice:
//   percap — metering-only budget (0 = unbounded): today's behaviour, the
//            per-client caps are the only bound; records the aggregate
//            peak the host actually suffers;
//   budget — the same storm under a fixed host budget B with
//            smallest-remaining-first admission.
// Then a deterministic virtual-time replay of the same per-image batch
// chains through the exported pick_next_ticket() compares
// smallest-remaining-first against FIFO admission at the same budget —
// same arrivals, same service model, only the admission order differs.
//
// Exit-code bars (also recorded in BENCH_admission.json):
//   1. peak:  under the budget leg, peak in-flight bytes <= B while the
//             metering leg's peak overshoots it (the storm really needed
//             governing);
//   2. sjf:   smallest-remaining-first mean completion strictly beats FIFO
//             at the same budget in the deterministic replay;
//   3. wire:  both storm legs move identical total wire bytes — admission
//             delays work, it never changes what is downloaded.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>

#include "bench_common.hpp"
#include "gear/admission.hpp"
#include "util/rng.hpp"

using namespace gear;

namespace {

/// One deploying node: clock, WAN link, disk, client.
struct Universe {
  sim::SimClock clock;
  sim::NetworkLink link;
  sim::DiskModel disk;
  GearClient client;

  Universe(docker::DockerRegistry& index_registry,
           FileRegistryApi& file_registry, double scale)
      : link(sim::scaled_link(clock, 100.0, scale)),
        disk(sim::DiskModel::scaled_hdd(clock, scale)),
        client(index_registry, file_registry, link, disk) {}
};

constexpr std::size_t kClients = 32;
/// The shared host budget B for the governed leg.
constexpr std::uint64_t kBudget = 256ull * 1024;
/// Historical per-client bound (download+decompression staging bytes).
constexpr std::uint64_t kPerClientCap = 128ull * 1024;
constexpr std::size_t kBatchFiles = 8;
/// Largest generated file — well under kBudget so no single request can
/// exceed the envelope on its own.
constexpr std::uint64_t kMaxFileBytes = 40ull * 1024;

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  double s = 0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

struct StormResult {
  std::vector<double> completion_s;  // per client, storm start -> warm
  double makespan_s = 0;
  std::uint64_t wire_bytes = 0;
  HostBudgetStats budget_stats;
};

/// Runs the 32-thread storm: every client deploys its own image and
/// prefetches the remainder, all charging `budget`. Wall-clock completion
/// per client; deterministic wire bytes from the simulated models.
StormResult run_storm(docker::DockerRegistry& index_registry,
                      FileRegistryApi& file_registry,
                      const std::vector<std::string>& refs, double scale,
                      HostBudget& budget) {
  std::vector<std::unique_ptr<Universe>> nodes;
  nodes.reserve(refs.size());
  for (std::size_t i = 0; i < refs.size(); ++i) {
    auto u = std::make_unique<Universe>(index_registry, file_registry, scale);
    u->client.set_concurrency({2, kPerClientCap});
    u->client.set_download_batch_files(kBatchFiles);
    u->client.set_host_budget(&budget);
    nodes.push_back(std::move(u));
  }

  StormResult out;
  out.completion_s.assign(refs.size(), 0);
  std::vector<std::uint64_t> wire(refs.size(), 0);
  const workload::AccessSet empty_access;

  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool go = false;
  std::chrono::steady_clock::time_point t0;

  std::vector<std::thread> threads;
  threads.reserve(refs.size());
  for (std::size_t i = 0; i < refs.size(); ++i) {
    threads.emplace_back([&, i] {
      {
        std::unique_lock<std::mutex> lock(gate_mu);
        gate_cv.wait(lock, [&] { return go; });
      }
      GearClient& client = nodes[i]->client;
      docker::DeployStats stats = client.deploy(refs[i], empty_access);
      auto [files, bytes] = client.prefetch_remaining(refs[i]);
      (void)files;
      wire[i] = stats.total_bytes() + bytes;
      out.completion_s[i] =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
    });
  }
  {
    std::lock_guard<std::mutex> lock(gate_mu);
    t0 = std::chrono::steady_clock::now();
    go = true;
  }
  gate_cv.notify_all();
  for (auto& t : threads) t.join();

  for (std::size_t i = 0; i < refs.size(); ++i) {
    out.wire_bytes += wire[i];
    out.makespan_s = std::max(out.makespan_s, out.completion_s[i]);
  }
  out.budget_stats = budget.stats();
  return out;
}

/// Deterministic virtual-time replay of the storm's batch chains through
/// pick_next_ticket() — the exact ranking the live HostBudget uses. Every
/// job arrives at t = 0, fetches its batches serially (a deploy's wire
/// phase), transfers proceed in parallel at one byte per time unit, and the
/// budget bounds admitted in-flight bytes. Only the admission order
/// differs between legs.
double replay_mean_completion(
    const std::vector<std::vector<std::uint64_t>>& chains,
    std::uint64_t budget_bytes, AdmissionOrder order, double* makespan_out) {
  struct Job {
    std::vector<std::uint64_t> batches;
    std::size_t next = 0;
    std::uint64_t remaining = 0;
    double done_at = 0;
  };
  struct Wait {
    AdmissionTicket ticket;
    std::size_t job;
  };
  // Completion events: (time, job) — job index breaks ties, so the replay
  // is fully deterministic.
  using Done = std::pair<double, std::size_t>;
  std::priority_queue<Done, std::vector<Done>, std::greater<Done>> done;

  std::vector<Job> jobs;
  jobs.reserve(chains.size());
  std::vector<Wait> waiting;
  std::uint64_t seq = 0;
  for (const auto& chain : chains) {
    Job j;
    j.batches = chain;
    for (std::uint64_t b : chain) j.remaining += b;
    jobs.push_back(std::move(j));
  }
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (jobs[i].batches.empty()) continue;
    waiting.push_back(
        {{jobs[i].batches[0], AdmissionLane::kBackground, jobs[i].remaining,
          seq++},
         i});
  }

  double now = 0;
  std::uint64_t inflight = 0;
  while (!waiting.empty() || !done.empty()) {
    // Admit everything the policy allows at this instant.
    for (;;) {
      std::vector<AdmissionTicket> tickets;
      tickets.reserve(waiting.size());
      for (const Wait& w : waiting) tickets.push_back(w.ticket);
      std::size_t pick =
          pick_next_ticket(tickets, inflight, budget_bytes, order);
      if (pick == kNoTicket) break;
      Wait w = waiting[pick];
      waiting.erase(waiting.begin() + static_cast<std::ptrdiff_t>(pick));
      inflight += w.ticket.bytes;
      done.push({now + static_cast<double>(w.ticket.bytes), w.job});
    }
    if (done.empty()) break;  // nothing in flight and nothing admissible
    auto [t, ji] = done.top();
    done.pop();
    now = t;
    Job& j = jobs[ji];
    std::uint64_t bytes = j.batches[j.next];
    inflight -= bytes;
    j.remaining -= bytes;
    ++j.next;
    if (j.next < j.batches.size()) {
      waiting.push_back(
          {{j.batches[j.next], AdmissionLane::kBackground, j.remaining, seq++},
           ji});
    } else {
      j.done_at = now;
    }
  }

  double sum = 0;
  double makespan = 0;
  for (const Job& j : jobs) {
    sum += j.done_at;
    makespan = std::max(makespan, j.done_at);
  }
  if (makespan_out != nullptr) *makespan_out = makespan;
  return jobs.empty() ? 0 : sum / static_cast<double>(jobs.size());
}

/// The greedy batch former the wire phase uses: cut at kBatchFiles files,
/// after the per-client cap overflows (the historical rule), and before a
/// file would push the batch past the host budget.
std::vector<std::uint64_t> form_batches(const std::vector<std::uint64_t>& files,
                                        std::uint64_t host_budget) {
  std::vector<std::uint64_t> batches;
  std::uint64_t cur = 0;
  std::size_t n = 0;
  for (std::uint64_t f : files) {
    if (n > 0 && host_budget != 0 && cur + f > host_budget) {
      batches.push_back(cur);
      cur = 0;
      n = 0;
    }
    cur += f;
    ++n;
    if (n >= kBatchFiles || cur >= kPerClientCap) {
      batches.push_back(cur);
      cur = 0;
      n = 0;
    }
  }
  if (n > 0) batches.push_back(cur);
  return batches;
}

}  // namespace

int main() {
  bench::Env e = bench::env();
  bench::print_title(
      "EXT: host-wide admission — shared budget, smallest-remaining-first",
      e);

  docker::DockerRegistry index_registry;
  GearRegistry file_registry;
  GearConverter converter;

  // 32 single-version images with deliberately spread sizes (file counts
  // 6+2i), so "smallest remaining" actually discriminates between deploys.
  std::vector<std::string> refs;
  std::vector<std::vector<std::uint64_t>> image_files(kClients);
  std::uint64_t corpus_bytes = 0;
  for (std::size_t i = 0; i < kClients; ++i) {
    Rng rng = Rng::from_label(e.seed, "admission/img" + std::to_string(i));
    std::size_t n_files = (e.fast ? 6 : 16) + 2 * i;
    vfs::FileTree tree;
    for (std::size_t f = 0; f < n_files; ++f) {
      std::uint64_t size = rng.next_range(4096, kMaxFileBytes);
      Bytes content(size);
      for (auto& b : content) b = static_cast<std::uint8_t>(rng.next_u64());
      image_files[i].push_back(size);
      corpus_bytes += size;
      tree.add_file("app/f" + std::to_string(f), std::move(content));
    }
    docker::ImageConfig config;
    config.labels["series"] = "storm" + std::to_string(i);
    docker::Image image =
        docker::ImageBuilder().add_snapshot(tree).build(
            "storm" + std::to_string(i), "v1", std::move(config));
    push_gear_image(converter.convert(image).image, index_registry,
                    file_registry);
    refs.push_back("storm" + std::to_string(i) + ":v1");
  }
  std::printf("corpus: %zu images, %s raw; budget B = %s, per-client cap %s\n"
              "\n",
              refs.size(), format_size(corpus_bytes).c_str(),
              format_size(kBudget).c_str(),
              format_size(kPerClientCap).c_str());

  // Leg 1 — per-client caps only: a metering budget observes the aggregate.
  HostBudget meter(0, AdmissionOrder::kSmallestFirst);
  StormResult percap =
      run_storm(index_registry, file_registry, refs, e.scale, meter);

  // Leg 2 — the same storm under the shared budget.
  HostBudget governed(kBudget, AdmissionOrder::kSmallestFirst);
  StormResult budget =
      run_storm(index_registry, file_registry, refs, e.scale, governed);

  std::vector<int> w = {8, 14, 11, 11, 11, 11, 9};
  bench::print_row({"leg", "peak inflight", "deploys/s", "p50", "p99",
                    "mean", "waits"},
                   w);
  bench::print_rule(w);
  auto row = [&](const char* name, const StormResult& r) {
    char rate[32];
    std::snprintf(rate, sizeof rate, "%.1f",
                  r.makespan_s > 0
                      ? static_cast<double>(kClients) / r.makespan_s
                      : 0.0);
    bench::print_row(
        {name, format_size(r.budget_stats.peak_inflight_bytes), rate,
         format_duration(bench::percentile(r.completion_s, 50)),
         format_duration(bench::percentile(r.completion_s, 99)),
         format_duration(mean(r.completion_s)),
         std::to_string(r.budget_stats.waits)},
        w);
  };
  row("percap", percap);
  row("budget", budget);

  // Deterministic replay: identical batch chains, identical budget, only
  // the admission order differs.
  std::vector<std::vector<std::uint64_t>> chains;
  chains.reserve(kClients);
  for (const auto& files : image_files) {
    chains.push_back(form_batches(files, kBudget));
  }
  double sjf_makespan = 0;
  double fifo_makespan = 0;
  double sjf_mean = replay_mean_completion(
      chains, kBudget, AdmissionOrder::kSmallestFirst, &sjf_makespan);
  double fifo_mean = replay_mean_completion(chains, kBudget,
                                            AdmissionOrder::kFifo,
                                            &fifo_makespan);

  // Bar 1: the governed peak respects B and governing was not a no-op.
  bool peak_ok =
      budget.budget_stats.peak_inflight_bytes <= kBudget &&
      percap.budget_stats.peak_inflight_bytes > kBudget;
  std::printf("\npeak in-flight: percap %s vs budget %s (B = %s) — %s\n",
              format_size(percap.budget_stats.peak_inflight_bytes).c_str(),
              format_size(budget.budget_stats.peak_inflight_bytes).c_str(),
              format_size(kBudget).c_str(),
              peak_ok ? "ok, governed <= B < ungoverned"
                      : "BAR FAILED");

  // Bar 2: smallest-remaining-first strictly beats FIFO on mean completion.
  bool sjf_ok = sjf_mean < fifo_mean;
  std::printf("replay mean completion at B: smallest-first %.0f vs FIFO %.0f "
              "byte-units (makespan %.0f vs %.0f) — %s\n",
              sjf_mean, fifo_mean, sjf_makespan, fifo_makespan,
              sjf_ok ? "ok, SJF < FIFO" : "BAR FAILED");

  // Bar 3: admission only delays downloads, it never changes them.
  bool wire_ok = percap.wire_bytes == budget.wire_bytes;
  std::printf("wire identity: percap %llu vs budget %llu bytes — %s\n",
              static_cast<unsigned long long>(percap.wire_bytes),
              static_cast<unsigned long long>(budget.wire_bytes),
              wire_ok ? "ok" : "MISMATCH");

  Json doc;
  doc["bench"] = "ext_admission";
  doc["scale"] = e.scale;
  doc["seed"] = e.seed;
  doc["clients"] = static_cast<std::int64_t>(kClients);
  doc["budget_bytes"] = kBudget;
  doc["per_client_cap_bytes"] = kPerClientCap;
  doc["corpus_bytes"] = corpus_bytes;
  JsonArray legs;
  auto leg_json = [&](const char* name, const StormResult& r) {
    JsonObject o;
    o["leg"] = name;
    o["peak_inflight_bytes"] = r.budget_stats.peak_inflight_bytes;
    o["admitted"] = r.budget_stats.admitted;
    o["waits"] = r.budget_stats.waits;
    o["demand_preemptions"] = r.budget_stats.demand_preemptions;
    o["makespan_s"] = r.makespan_s;
    o["deploys_per_s"] =
        r.makespan_s > 0 ? static_cast<double>(kClients) / r.makespan_s : 0;
    o["completion_p50_s"] = bench::percentile(r.completion_s, 50);
    o["completion_p99_s"] = bench::percentile(r.completion_s, 99);
    o["completion_mean_s"] = mean(r.completion_s);
    o["wire_bytes"] = r.wire_bytes;
    legs.push_back(Json(std::move(o)));
  };
  leg_json("percap", percap);
  leg_json("budget", budget);
  doc["legs"] = std::move(legs);
  doc["replay_sjf_mean"] = sjf_mean;
  doc["replay_fifo_mean"] = fifo_mean;
  doc["replay_sjf_makespan"] = sjf_makespan;
  doc["replay_fifo_makespan"] = fifo_makespan;
  doc["peak_ok"] = peak_ok;
  doc["sjf_ok"] = sjf_ok;
  doc["wire_ok"] = wire_ok;
  bench::write_json("BENCH_admission.json", doc);

  if (!peak_ok || !sjf_ok || !wire_ok) {
    std::printf("\nFAILED: admission bars not met\n");
    return 1;
  }
  std::printf("\nall admission bars met\n");
  return 0;
}
