// Table II: storage usage and number of unique objects under different
// deduplication granularities (none / layer / file / chunk) over the 971
// images of the Table I corpus.
//
// Paper values (full scale): 370 GB/971 -> 98 GB/5,670 -> 47 GB/639,585 ->
// 43 GB/~10.5 M. The shapes to reproduce: layer dedup+compression saves
// ~74%, file-level saves ~87%, chunk-level saves marginally more bytes than
// file-level while exploding the object count by an order of magnitude.
#include "bench_common.hpp"
#include "dedup/analyzer.hpp"

using namespace gear;

int main() {
  bench::Env e = bench::env();
  bench::print_title("Table II: deduplication granularity", e);

  // 128 KB chunks at full scale correspond to ~1/4 of the average file.
  // The scaled corpus floors files at ~4-16 KB regardless of GEAR_SCALE
  // (generator.cpp kMinAvgFileBytes), so a fixed 512 B chunk preserves the
  // chunk:file ratios of Table II at any scale.
  const std::uint64_t chunk_bytes = 512;

  workload::CorpusGenerator gen(e.seed, e.scale);
  dedup::DedupAnalyzer analyzer(chunk_bytes);
  int images = 0;
  for (const auto& spec : bench::corpus(e)) {
    for (int v = 0; v < spec.versions; ++v) {
      analyzer.add_image(gen.generate_image(spec, v));
      ++images;
    }
  }
  std::printf("analyzed %d images, chunk size %s\n\n", images,
              format_size(chunk_bytes).c_str());

  std::vector<int> w = {14, 14, 18, 12, 14};
  bench::print_row({"granularity", "storage", "(paper-equiv)", "objects",
                    "saving"},
                   w);
  bench::print_rule(w);

  dedup::DedupReport none = analyzer.none();
  auto row = [&](const char* name, const dedup::DedupReport& r) {
    double saving = 1.0 - static_cast<double>(r.storage_bytes) /
                              static_cast<double>(none.storage_bytes);
    bench::print_row({name, format_size(r.storage_bytes),
                      bench::full_scale_size(r.storage_bytes, e.scale),
                      std::to_string(r.object_count),
                      name == std::string("none") ? "-"
                                                  : format_percent(saving)},
                     w);
  };
  row("none", none);
  row("layer-level", analyzer.layer_level());
  row("file-level", analyzer.file_level());
  row("chunk-level", analyzer.chunk_level());

  std::printf("\npaper Table II:   370 GB/971   98 GB/5,670   47 GB/639,585"
              "   43 GB/10,478,675\n");
  std::printf("expected shape: none > layer > file ~ chunk storage; "
              "chunk objects >> file objects\n");

  double chunk_file_ratio =
      static_cast<double>(analyzer.chunk_level().object_count) /
      static_cast<double>(analyzer.file_level().object_count);
  std::printf("chunk/file object ratio: %.1fx (paper: 16.4x)\n",
              chunk_file_ratio);
  return 0;
}
