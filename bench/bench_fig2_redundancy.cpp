// Fig. 2: redundancy between the necessary data (startup access sets) of
// images within a common image series, averaged per category.
//
// Paper values: Database 56.0%, Application Platform 57.4%, average 39.9% —
// i.e. a local file-level cache can skip ~40% of the necessary data when
// deploying versions of a series one after another.
#include <map>

#include "bench_common.hpp"

using namespace gear;

int main() {
  bench::Env e = bench::env();
  bench::print_title("Fig. 2: redundancy among necessary data within a series",
                     e);

  workload::CorpusGenerator gen(e.seed, e.scale);
  std::map<workload::Category, std::vector<double>> by_category;

  for (const auto& spec : bench::corpus(e)) {
    std::vector<workload::AccessSet> sets;
    // The paper measures across every collected version of a series; the
    // env-epoch boundaries inside a 20-version window matter.
    int versions = spec.versions;
    for (int v = 0; v < versions; ++v) {
      sets.push_back(gen.access_set(spec, v));
    }
    if (sets.size() < 2) continue;
    by_category[spec.category].push_back(workload::access_redundancy(sets));
  }

  std::vector<int> w = {22, 12, 10};
  bench::print_row({"category", "redundancy", "(paper)"}, w);
  bench::print_rule(w);

  std::map<workload::Category, const char*> paper = {
      {workload::Category::kLinuxDistro, "~25 %"},
      {workload::Category::kLanguage, "~33 %"},
      {workload::Category::kDatabase, "56.0 %"},
      {workload::Category::kWebComponent, "~42 %"},
      {workload::Category::kApplicationPlatform, "57.4 %"},
      {workload::Category::kOthers, "~35 %"},
  };

  double grand_total = 0;
  int grand_n = 0;
  for (workload::Category cat : workload::all_categories()) {
    const auto& vals = by_category[cat];
    if (vals.empty()) continue;
    double sum = 0;
    for (double v : vals) sum += v;
    double avg = sum / static_cast<double>(vals.size());
    grand_total += sum;
    grand_n += static_cast<int>(vals.size());
    bench::print_row({workload::category_name(cat), format_percent(avg),
                      paper[cat]},
                     w);
  }
  bench::print_rule(w);
  bench::print_row({"average", format_percent(grand_total / grand_n), "39.9 %"},
                   w);
  std::printf("\nexpected shape: Database and Application Platform highest; "
              "base-image categories lowest\n");
  return 0;
}
