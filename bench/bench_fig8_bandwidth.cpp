// Fig. 8: bytes transferred during container deployments, by category, for
// Docker (full image pull), Gear without a local cache, and Gear with the
// shared local cache.
//
// Paper values: Gear-no-cache moves ~29.1% of Docker's bytes (70.9% saving);
// with the cache only 16.2% has to be fetched remotely; ~44.4% of accessed
// files are common within a series.
#include "bench_common.hpp"
#include "docker/client.hpp"

using namespace gear;

int main() {
  bench::Env e = bench::env();
  bench::print_title("Fig. 8: bandwidth usage during deployments", e);

  workload::CorpusGenerator gen(e.seed, e.scale);
  std::vector<workload::SeriesSpec> all = bench::corpus(e);

  // Shared registries for everything.
  docker::DockerRegistry classic;
  docker::DockerRegistry index_registry;
  GearRegistry file_registry;

  std::vector<int> w = {22, 13, 15, 13, 12, 12};
  bench::print_row({"category", "docker", "gear(no cache)", "gear(cache)",
                    "no-cache %", "cache %"},
                   w);
  bench::print_rule(w);

  double sum_docker = 0, sum_nocache = 0, sum_cache = 0;
  const int kVersions = e.fast ? 3 : 5;

  for (workload::Category cat : workload::all_categories()) {
    std::uint64_t docker_bytes = 0, nocache_bytes = 0, cache_bytes = 0;

    for (const auto& spec : all) {
      if (spec.category != cat) continue;
      int versions = std::min(spec.versions, kVersions);

      // Ingest this series (both formats).
      GearConverter converter;
      for (int v = 0; v < versions; ++v) {
        docker::Image image = gen.generate_image(spec, v);
        classic.push_image(image);
        push_gear_image(converter.convert(image).image, index_registry,
                        file_registry);
      }

      // One client per series per system; versions deployed in sequence
      // (the paper's rolling-deployment scenario).
      sim::SimClock dc;
      sim::NetworkLink dl = sim::scaled_link(dc, 904.0, e.scale);
      sim::DiskModel dd = sim::DiskModel::scaled_hdd(dc, e.scale);
      docker::DockerClient docker_client(classic, dl, dd);

      sim::SimClock nc;
      sim::NetworkLink nl = sim::scaled_link(nc, 904.0, e.scale);
      sim::DiskModel nd = sim::DiskModel::scaled_hdd(nc, e.scale);
      GearClient gear_nocache(index_registry, file_registry, nl, nd);

      sim::SimClock cc;
      sim::NetworkLink cl = sim::scaled_link(cc, 904.0, e.scale);
      sim::DiskModel cd = sim::DiskModel::scaled_hdd(cc, e.scale);
      GearClient gear_cache(index_registry, file_registry, cl, cd);

      for (int v = 0; v < versions; ++v) {
        workload::AccessSet access = gen.access_set(spec, v);
        std::string ref = spec.name + ":v" + std::to_string(v);

        // Docker downloads the full image: the paper's Fig. 8 measures the
        // bandwidth of deploying each image afresh (layer reuse across a
        // version sequence is Fig. 10's subject, not this one).
        docker_client.clear_local_state();
        docker_bytes += docker_client.deploy(ref, access).total_bytes();

        // Gear with the cache emptied before each deployment (paper's
        // second scenario).
        gear_nocache.clear_all_local_state();
        nocache_bytes += gear_nocache.deploy(ref, access).total_bytes();

        // Gear keeping its shared cache across the sequence.
        cache_bytes += gear_cache.deploy(ref, access).total_bytes();
      }
    }

    if (docker_bytes == 0) continue;
    sum_docker += static_cast<double>(docker_bytes);
    sum_nocache += static_cast<double>(nocache_bytes);
    sum_cache += static_cast<double>(cache_bytes);
    bench::print_row(
        {workload::category_name(cat),
         bench::full_scale_size(docker_bytes, e.scale),
         bench::full_scale_size(nocache_bytes, e.scale),
         bench::full_scale_size(cache_bytes, e.scale),
         format_percent(static_cast<double>(nocache_bytes) / docker_bytes),
         format_percent(static_cast<double>(cache_bytes) / docker_bytes)},
        w);
  }

  bench::print_rule(w);
  std::printf("\noverall: gear(no cache) = %s of docker (paper: 29.1 %%), "
              "gear(cache) = %s of docker (paper: 16.2 %%)\n",
              format_percent(sum_nocache / sum_docker).c_str(),
              format_percent(sum_cache / sum_docker).c_str());
  std::printf("expected shape: both Gear modes move a small fraction of "
              "Docker's bytes; the cache roughly halves the remainder\n");
  return 0;
}
