// Fig. 8: bytes transferred during container deployments, by category, for
// Docker (full image pull), Gear without a local cache, and Gear with the
// shared local cache.
//
// Paper values: Gear-no-cache moves ~29.1% of Docker's bytes (70.9% saving);
// with the cache only 16.2% has to be fetched remotely; ~44.4% of accessed
// files are common within a series.
#include <chrono>
#include <thread>

#include "bench_common.hpp"
#include "docker/client.hpp"
#include "net/remote_registry.hpp"
#include "net/transport.hpp"

using namespace gear;

int main() {
  bench::Env e = bench::env();
  bench::print_title("Fig. 8: bandwidth usage during deployments", e);

  workload::CorpusGenerator gen(e.seed, e.scale);
  std::vector<workload::SeriesSpec> all = bench::corpus(e);

  // Shared registries for everything.
  docker::DockerRegistry classic;
  docker::DockerRegistry index_registry;
  GearRegistry file_registry;

  std::vector<int> w = {22, 13, 15, 13, 12, 12};
  bench::print_row({"category", "docker", "gear(no cache)", "gear(cache)",
                    "no-cache %", "cache %"},
                   w);
  bench::print_rule(w);

  double sum_docker = 0, sum_nocache = 0, sum_cache = 0;
  const int kVersions = e.fast ? 3 : 5;

  for (workload::Category cat : workload::all_categories()) {
    std::uint64_t docker_bytes = 0, nocache_bytes = 0, cache_bytes = 0;

    for (const auto& spec : all) {
      if (spec.category != cat) continue;
      int versions = std::min(spec.versions, kVersions);

      // Ingest this series (both formats).
      GearConverter converter;
      for (int v = 0; v < versions; ++v) {
        docker::Image image = gen.generate_image(spec, v);
        classic.push_image(image);
        push_gear_image(converter.convert(image).image, index_registry,
                        file_registry);
      }

      // One client per series per system; versions deployed in sequence
      // (the paper's rolling-deployment scenario).
      sim::SimClock dc;
      sim::NetworkLink dl = sim::scaled_link(dc, 904.0, e.scale);
      sim::DiskModel dd = sim::DiskModel::scaled_hdd(dc, e.scale);
      docker::DockerClient docker_client(classic, dl, dd);

      sim::SimClock nc;
      sim::NetworkLink nl = sim::scaled_link(nc, 904.0, e.scale);
      sim::DiskModel nd = sim::DiskModel::scaled_hdd(nc, e.scale);
      GearClient gear_nocache(index_registry, file_registry, nl, nd);

      sim::SimClock cc;
      sim::NetworkLink cl = sim::scaled_link(cc, 904.0, e.scale);
      sim::DiskModel cd = sim::DiskModel::scaled_hdd(cc, e.scale);
      GearClient gear_cache(index_registry, file_registry, cl, cd);

      for (int v = 0; v < versions; ++v) {
        workload::AccessSet access = gen.access_set(spec, v);
        std::string ref = spec.name + ":v" + std::to_string(v);

        // Docker downloads the full image: the paper's Fig. 8 measures the
        // bandwidth of deploying each image afresh (layer reuse across a
        // version sequence is Fig. 10's subject, not this one).
        docker_client.clear_local_state();
        docker_bytes += docker_client.deploy(ref, access).total_bytes();

        // Gear with the cache emptied before each deployment (paper's
        // second scenario).
        gear_nocache.clear_all_local_state();
        nocache_bytes += gear_nocache.deploy(ref, access).total_bytes();

        // Gear keeping its shared cache across the sequence.
        cache_bytes += gear_cache.deploy(ref, access).total_bytes();
      }
    }

    if (docker_bytes == 0) continue;
    sum_docker += static_cast<double>(docker_bytes);
    sum_nocache += static_cast<double>(nocache_bytes);
    sum_cache += static_cast<double>(cache_bytes);
    bench::print_row(
        {workload::category_name(cat),
         bench::full_scale_size(docker_bytes, e.scale),
         bench::full_scale_size(nocache_bytes, e.scale),
         bench::full_scale_size(cache_bytes, e.scale),
         format_percent(static_cast<double>(nocache_bytes) / docker_bytes),
         format_percent(static_cast<double>(cache_bytes) / docker_bytes)},
        w);
  }

  bench::print_rule(w);
  std::printf("\noverall: gear(no cache) = %s of docker (paper: 29.1 %%), "
              "gear(cache) = %s of docker (paper: 16.2 %%)\n",
              format_percent(sum_nocache / sum_docker).c_str(),
              format_percent(sum_cache / sum_docker).c_str());
  std::printf("expected shape: both Gear modes move a small fraction of "
              "Docker's bytes; the cache roughly halves the remainder\n");

  // Transport leg: the same registry behind the wire protocol. Each series'
  // v0 image is deployed to fully local (pull + prefetch) through a
  // LoopbackTransport charging the simulated link per frame, once with
  // batch = 1 (the serial per-file protocol over the same batch messages)
  // and once with batch = 64. The transfer results must be identical; only
  // round trips, frame overhead, and therefore deploy time may differ.
  struct TransportLeg {
    std::uint64_t round_trips = 0;
    std::uint64_t download_round_trips = 0;
    std::uint64_t wire_bytes = 0;   // request + response frame bytes
    std::size_t fetched = 0;
    std::uint64_t payload_bytes = 0;  // compressed object bytes moved
    std::uint64_t server_downloads = 0;
    double deploy_ms = 0;
  };
  auto run_transport_leg = [&](std::size_t batch_files) {
    TransportLeg r;
    std::uint64_t downloads_before = file_registry.stats().downloads;
    for (const auto& spec : all) {
      sim::SimClock c;
      sim::NetworkLink l = sim::scaled_link(c, 904.0, e.scale);
      sim::DiskModel d = sim::DiskModel::scaled_hdd(c, e.scale);
      net::LoopbackTransport transport(file_registry, &l);
      // Converter fingerprints may be collision-salted (§III-B): skip the
      // content-hash check, the frame CRC still guards every transfer.
      net::RemoteGearRegistry remote(transport, 3, /*verify_content=*/false);
      GearClient client(index_registry, remote, l, d);
      client.set_download_batch_files(batch_files);
      std::string ref = spec.name + ":v0";
      client.pull(ref);
      auto got = client.prefetch_remaining(ref);
      r.fetched += got.first;
      r.payload_bytes += got.second;
      const net::LoopbackServerStats& s = transport.server_stats();
      r.round_trips += s.round_trips;
      r.download_round_trips += s.download_round_trips;
      r.wire_bytes += s.bytes_in + s.bytes_out;
      r.deploy_ms += c.now() * 1000.0;
    }
    r.server_downloads = file_registry.stats().downloads - downloads_before;
    return r;
  };

  TransportLeg per_file = run_transport_leg(1);
  TransportLeg batched = run_transport_leg(64);

  bool identical = per_file.fetched == batched.fetched &&
                   per_file.payload_bytes == batched.payload_bytes &&
                   per_file.server_downloads == batched.server_downloads;
  bool reduced = batched.download_round_trips < per_file.download_round_trips;
  bool no_wire_regression = batched.wire_bytes <= per_file.wire_bytes;

  std::printf("\ntransport deployment (pull + full prefetch over the wire "
              "protocol, %zu images):\n", all.size());
  std::vector<int> wt = {12, 14, 14, 14, 12};
  bench::print_row({"mode", "round trips", "wire bytes", "deploy time",
                    "files"}, wt);
  bench::print_rule(wt);
  bench::print_row({"per-file", std::to_string(per_file.round_trips),
                    format_size(per_file.wire_bytes),
                    format_duration(per_file.deploy_ms / 1000.0),
                    std::to_string(per_file.fetched)}, wt);
  bench::print_row({"batched", std::to_string(batched.round_trips),
                    format_size(batched.wire_bytes),
                    format_duration(batched.deploy_ms / 1000.0),
                    std::to_string(batched.fetched)}, wt);
  std::printf("download round trips: %llu -> %llu (%.1fx fewer), transfer "
              "results identical: %s, wire-byte regression: %s\n",
              static_cast<unsigned long long>(per_file.download_round_trips),
              static_cast<unsigned long long>(batched.download_round_trips),
              batched.download_round_trips == 0
                  ? 0.0
                  : static_cast<double>(per_file.download_round_trips) /
                        static_cast<double>(batched.download_round_trips),
              identical ? "yes" : "NO",
              no_wire_regression ? "none" : "REGRESSED");

  // Registry-concurrency leg: the sharded storage engine must let
  // independent batch-downloading clients overlap on one server. One shared
  // wire server, no simulated link — this leg measures real wall-clock.
  // Each client scans every stored object in batches of 64; 4 concurrent
  // clients therefore do 4x the serial client's work, so perfect read
  // scaling keeps wall time flat (aggregate throughput 4x).
  std::vector<Fingerprint> every_object = file_registry.list_objects();
  net::LoopbackTransport shared_server(file_registry);
  // Each scan also records the wall latency of every 64-object batch it
  // issues, so the leg reports per-client p50/p99 — the single-node baseline
  // the fleet harness (bench_ext_fleet) compares its latency columns against.
  auto scan_all = [&](std::vector<double>& batch_latency_ms) {
    net::RemoteGearRegistry client(shared_server, 3, /*verify_content=*/false);
    std::vector<Bytes> scanned;
    scanned.reserve(every_object.size());
    for (std::size_t at = 0; at < every_object.size(); at += 64) {
      std::vector<Fingerprint> group(
          every_object.begin() + static_cast<std::ptrdiff_t>(at),
          every_object.begin() + static_cast<std::ptrdiff_t>(
                                     std::min(at + 64, every_object.size())));
      auto batch_begin = std::chrono::steady_clock::now();
      std::vector<Bytes> part = client.download_batch(group).value();
      batch_latency_ms.push_back(
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - batch_begin)
              .count());
      for (Bytes& b : part) scanned.push_back(std::move(b));
    }
    return scanned;
  };
  auto wall_s = [](auto fn) {
    auto begin = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         begin)
        .count();
  };

  std::vector<Bytes> serial_scan;
  std::vector<double> serial_latency_ms;
  double serial_s = wall_s([&] { serial_scan = scan_all(serial_latency_ms); });

  constexpr int kConcurrentClients = 4;
  std::vector<std::vector<Bytes>> concurrent_scans(kConcurrentClients);
  std::vector<std::vector<double>> concurrent_latency_ms(kConcurrentClients);
  double concurrent_s = wall_s([&] {
    std::vector<std::thread> clients;
    clients.reserve(kConcurrentClients);
    for (int c = 0; c < kConcurrentClients; ++c) {
      clients.emplace_back([&, c] {
        std::size_t slot = static_cast<std::size_t>(c);
        concurrent_scans[slot] = scan_all(concurrent_latency_ms[slot]);
      });
    }
    for (std::thread& t : clients) t.join();
  });

  bool concurrent_identical = true;
  for (const std::vector<Bytes>& scan : concurrent_scans) {
    concurrent_identical = concurrent_identical && scan == serial_scan;
  }
  double throughput_x = concurrent_s > 0.0
                            ? kConcurrentClients * serial_s / concurrent_s
                            : 0.0;
  std::vector<double> merged_latency_ms;
  for (const std::vector<double>& one : concurrent_latency_ms) {
    merged_latency_ms.insert(merged_latency_ms.end(), one.begin(), one.end());
  }
  double serial_p50 = bench::percentile(serial_latency_ms, 50.0);
  double serial_p99 = bench::percentile(serial_latency_ms, 99.0);
  double client_p50 = bench::percentile(merged_latency_ms, 50.0);
  double client_p99 = bench::percentile(merged_latency_ms, 99.0);
  std::printf("\nregistry concurrency (%zu objects per scan, shared wire "
              "server):\n  1 client %s, %d concurrent clients %s "
              "(aggregate throughput %.2fx, byte-identical: %s)\n"
              "  per-batch latency: serial p50 %.3f ms / p99 %.3f ms, "
              "concurrent p50 %.3f ms / p99 %.3f ms\n",
              every_object.size(), format_duration(serial_s).c_str(),
              kConcurrentClients, format_duration(concurrent_s).c_str(),
              throughput_x, concurrent_identical ? "yes" : "NO", serial_p50,
              serial_p99, client_p50, client_p99);

  Json doc;
  doc["bench"] = "fig8_bandwidth";
  doc["scale"] = e.scale;
  doc["seed"] = e.seed;
  doc["docker_bytes"] = sum_docker;
  doc["gear_nocache_bytes"] = sum_nocache;
  doc["gear_cache_bytes"] = sum_cache;
  auto leg_json = [](const TransportLeg& leg) {
    Json j;
    j["round_trips"] = static_cast<std::int64_t>(leg.round_trips);
    j["download_round_trips"] =
        static_cast<std::int64_t>(leg.download_round_trips);
    j["wire_bytes"] = static_cast<std::int64_t>(leg.wire_bytes);
    j["deploy_ms"] = leg.deploy_ms;
    j["files_fetched"] = static_cast<std::int64_t>(leg.fetched);
    j["payload_bytes"] = static_cast<std::int64_t>(leg.payload_bytes);
    return j;
  };
  doc["transport_per_file"] = leg_json(per_file);
  doc["transport_batched"] = leg_json(batched);
  doc["round_trip_reduction"] =
      batched.download_round_trips == 0
          ? 0.0
          : static_cast<double>(per_file.download_round_trips) /
                static_cast<double>(batched.download_round_trips);
  doc["identical"] = identical;
  doc["no_wire_regression"] = no_wire_regression;
  Json reg_concurrency;
  reg_concurrency["clients"] = static_cast<std::int64_t>(kConcurrentClients);
  reg_concurrency["objects_per_scan"] =
      static_cast<std::int64_t>(every_object.size());
  reg_concurrency["serial_scan_ms"] = serial_s * 1000.0;
  reg_concurrency["concurrent_scan_ms"] = concurrent_s * 1000.0;
  reg_concurrency["aggregate_throughput_x"] = throughput_x;
  reg_concurrency["serial_p50_ms"] = serial_p50;
  reg_concurrency["serial_p99_ms"] = serial_p99;
  reg_concurrency["client_p50_ms"] = client_p50;
  reg_concurrency["client_p99_ms"] = client_p99;
  reg_concurrency["identical"] = concurrent_identical;
  doc["registry_concurrency"] = reg_concurrency;
  bench::write_json("BENCH_fig8.json", doc);
  return (identical && reduced && no_wire_regression && concurrent_identical)
             ? 0
             : 1;
}
