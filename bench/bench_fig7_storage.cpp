// Fig. 7: registry storage savings of Gear (file-level sharing + per-file
// compression) over Docker (layer-level sharing + per-layer compression).
//
//  (a) per category — paper: Database 52.2%, Web 60.9%, Platform 58.6%,
//      Others 46.7%, Linux Distro 20.5%, Language 32.8%;
//  (b) all 50 series in one registry — paper: 53.7% saving, with indexes
//      averaging ~0.53 MB (1.1% of total).
#include "bench_common.hpp"

using namespace gear;

namespace {

struct Footprints {
  std::uint64_t docker_bytes = 0;
  std::uint64_t gear_bytes = 0;  // files + indexes
  std::uint64_t index_bytes = 0;
  std::size_t index_count = 0;
};

Footprints measure(const std::vector<workload::SeriesSpec>& specs,
                   const workload::CorpusGenerator& gen) {
  docker::DockerRegistry classic;
  docker::DockerRegistry index_registry;
  GearRegistry file_registry;
  bench::ingest_corpus(specs, gen, &classic, &index_registry, &file_registry);

  Footprints f;
  f.docker_bytes = classic.storage_bytes();
  f.index_bytes = index_registry.blob_bytes();
  f.index_count = index_registry.manifest_count();
  f.gear_bytes = file_registry.storage_bytes() +
                 index_registry.storage_bytes();
  return f;
}

}  // namespace

int main() {
  bench::Env e = bench::env();
  bench::print_title("Fig. 7: registry storage saving (Docker vs Gear)", e);

  workload::CorpusGenerator gen(e.seed, e.scale);
  std::vector<workload::SeriesSpec> all = bench::corpus(e);

  // (a) per-category registries.
  std::printf("(a) per-category registries\n");
  std::vector<int> w = {22, 13, 13, 10, 10};
  bench::print_row({"category", "docker", "gear", "saving", "(paper)"}, w);
  bench::print_rule(w);
  std::map<workload::Category, const char*> paper = {
      {workload::Category::kLinuxDistro, "20.5 %"},
      {workload::Category::kLanguage, "32.8 %"},
      {workload::Category::kDatabase, "52.2 %"},
      {workload::Category::kWebComponent, "60.9 %"},
      {workload::Category::kApplicationPlatform, "58.6 %"},
      {workload::Category::kOthers, "46.7 %"},
  };
  for (workload::Category cat : workload::all_categories()) {
    std::vector<workload::SeriesSpec> subset;
    for (const auto& s : all) {
      if (s.category == cat) subset.push_back(s);
    }
    if (subset.empty()) continue;
    Footprints f = measure(subset, gen);
    double saving = 1.0 - static_cast<double>(f.gear_bytes) /
                              static_cast<double>(f.docker_bytes);
    bench::print_row({workload::category_name(cat),
                      bench::full_scale_size(f.docker_bytes, e.scale),
                      bench::full_scale_size(f.gear_bytes, e.scale),
                      format_percent(saving), paper[cat]},
                     w);
  }

  // (b) one registry for everything: cross-series dedup kicks in.
  std::printf("\n(b) all series in one registry\n");
  Footprints f = measure(all, gen);
  double saving = 1.0 - static_cast<double>(f.gear_bytes) /
                            static_cast<double>(f.docker_bytes);
  std::printf("  docker registry: %s (paper-equiv %s)\n",
              format_size(f.docker_bytes).c_str(),
              bench::full_scale_size(f.docker_bytes, e.scale).c_str());
  std::printf("  gear registry:   %s (paper-equiv %s)\n",
              format_size(f.gear_bytes).c_str(),
              bench::full_scale_size(f.gear_bytes, e.scale).c_str());
  std::printf("  saving:          %s   (paper: 53.7 %%)\n",
              format_percent(saving).c_str());
  std::printf("  avg index size:  %s over %zu indexes (paper: ~0.53 MB; "
              "per-entry index cost does not shrink with corpus scale, see "
              "EXPERIMENTS.md)\n",
              format_size(f.index_bytes / std::max<std::size_t>(1, f.index_count))
                  .c_str(),
              f.index_count);
  std::printf("  index share of gear registry: %s (paper: 1.1 %%)\n",
              format_percent(static_cast<double>(f.index_bytes) /
                             static_cast<double>(f.gear_bytes))
                  .c_str());
  std::printf("\nexpected shape: application categories save most; base-image "
              "categories least; combined registry saves ~half\n");
  return 0;
}
