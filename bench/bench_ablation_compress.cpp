// Ablation: compression granularity — per-file vs per-layer.
//
// DESIGN.md §6: Gear compresses each Gear file individually (necessary for
// content addressing and on-demand fetch); Docker compresses whole layer
// tarballs. Whole-layer compression achieves a better raw ratio (larger
// window, cross-file matches) but freezes the layer as an opaque blob —
// disabling file-level dedup. This bench separates the two effects.
#include "bench_common.hpp"
#include "compress/codec.hpp"
#include "tar/tar.hpp"
#include "util/md5.hpp"

#include <unordered_set>

using namespace gear;

int main() {
  bench::Env e = bench::env();
  bench::print_title("Ablation: per-file vs per-layer compression", e);

  workload::CorpusGenerator gen(e.seed, e.scale);
  std::vector<workload::SeriesSpec> specs = workload::small_corpus(2, 8);

  std::uint64_t raw_bytes = 0;            // unpacked unique-file bytes
  std::uint64_t file_comp_unique = 0;     // per-file compression + file dedup
  std::uint64_t layer_comp_unique = 0;    // per-layer compression + layer dedup
  std::uint64_t file_comp_nodedup = 0;    // per-file compression, no dedup
  std::unordered_set<Fingerprint, FingerprintHash> files_seen;
  std::unordered_set<docker::Digest, docker::DigestHash> layers_seen;

  for (const auto& spec : specs) {
    for (int v = 0; v < spec.versions; ++v) {
      docker::Image image = gen.generate_image(spec, v);
      for (const docker::Layer& layer : image.layers) {
        if (layers_seen.insert(layer.digest()).second) {
          layer_comp_unique += layer.compressed_size();
        }
      }
      image.flatten().walk([&](const std::string&, const vfs::FileNode& n) {
        if (!n.is_regular()) return;
        std::uint64_t comp = compress(n.content()).size();
        file_comp_nodedup += comp;
        Fingerprint fp{Md5::hash(n.content())};
        if (files_seen.insert(fp).second) {
          raw_bytes += n.content().size();
          file_comp_unique += comp;
        }
      });
    }
  }

  std::vector<int> w = {34, 14, 20};
  bench::print_row({"scheme", "storage", "vs per-layer+dedup"}, w);
  bench::print_rule(w);
  auto rel = [&](std::uint64_t v) {
    return format_percent(static_cast<double>(v) /
                          static_cast<double>(layer_comp_unique));
  };
  bench::print_row({"per-layer compress + layer dedup",
                    format_size(layer_comp_unique), "100.0 %"},
                   w);
  bench::print_row({"per-file compress, no dedup",
                    format_size(file_comp_nodedup), rel(file_comp_nodedup)},
                   w);
  bench::print_row({"per-file compress + file dedup (Gear)",
                    format_size(file_comp_unique), rel(file_comp_unique)},
                   w);
  bench::print_row({"unique files, uncompressed", format_size(raw_bytes),
                    rel(raw_bytes)},
                   w);

  std::printf("\nexpected shape: per-file compression alone loses to "
              "per-layer (smaller windows, repeated files), but adding "
              "file-level dedup flips the result — the core of Gear's "
              "storage win (Fig. 7)\n");
  return 0;
}
