// Fig. 6: average conversion time (Docker image -> Gear image) per series,
// in ascending order of average uncompressed image size, on the HDD model —
// plus the HDD vs SSD comparison the paper reports for the `node` series
// (105 s -> 36 s, a 65.7% reduction).
//
// Paper values: ~46 s average on HDD; time proportional to image size.
#include <algorithm>
#include <cmath>

#include "bench_common.hpp"

using namespace gear;

int main() {
  bench::Env e = bench::env();
  bench::print_title("Fig. 6: image conversion time per series", e);

  workload::CorpusGenerator gen(e.seed, e.scale);
  GearConverter converter;

  struct Row {
    std::string name;
    std::uint64_t avg_size = 0;  // scaled bytes
    double hdd_seconds = 0;
    double ssd_seconds = 0;
  };
  std::vector<Row> rows;

  for (const auto& spec : bench::corpus(e)) {
    Row row;
    row.name = spec.name;
    // Average over a sample of versions (conversion time is per-image; the
    // paper averages the whole series).
    int versions = std::min(spec.versions, 5);
    for (int v = 0; v < versions; ++v) {
      docker::Image image = gen.generate_image(spec, v);
      row.avg_size += image.uncompressed_size();

      sim::SimClock hdd_clock;
      sim::DiskModel hdd = sim::DiskModel::scaled_hdd(hdd_clock, e.scale);
      double t_hdd = 0;
      converter.convert_timed(image, hdd, &t_hdd);
      row.hdd_seconds += t_hdd;

      sim::SimClock ssd_clock;
      sim::DiskModel ssd = sim::DiskModel::scaled_ssd(ssd_clock, e.scale);
      double t_ssd = 0;
      converter.convert_timed(image, ssd, &t_ssd);
      row.ssd_seconds += t_ssd;
    }
    row.avg_size /= static_cast<std::uint64_t>(versions);
    row.hdd_seconds /= versions;
    row.ssd_seconds /= versions;
    rows.push_back(row);
  }

  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.avg_size < b.avg_size; });

  std::vector<int> w = {20, 14, 12, 12, 10};
  bench::print_row({"series", "avg size(paper)", "hdd conv", "ssd conv",
                    "ssd gain"},
                   w);
  bench::print_rule(w);
  double total_hdd = 0;
  for (const Row& r : rows) {
    total_hdd += r.hdd_seconds;
    bench::print_row(
        {r.name, bench::full_scale_size(r.avg_size, e.scale),
         format_duration(r.hdd_seconds), format_duration(r.ssd_seconds),
         format_percent(1.0 - r.ssd_seconds / r.hdd_seconds)},
        w);
  }
  bench::print_rule(w);
  std::printf("average HDD conversion time: %s   (paper: ~46 s)\n",
              format_duration(total_hdd / static_cast<double>(rows.size()))
                  .c_str());

  // Correlation between size and time (the paper's "proportional" claim).
  double n = static_cast<double>(rows.size());
  double sx = 0, sy = 0, sxy = 0, sxx = 0, syy = 0;
  for (const Row& r : rows) {
    double x = static_cast<double>(r.avg_size);
    double y = r.hdd_seconds;
    sx += x; sy += y; sxy += x * y; sxx += x * x; syy += y * y;
  }
  double corr = (n * sxy - sx * sy) /
                std::sqrt((n * sxx - sx * sx) * (n * syy - sy * sy));
  std::printf("size-time correlation: %.3f (expected: close to 1 — "
              "conversion time proportional to image size)\n", corr);
  return 0;
}
