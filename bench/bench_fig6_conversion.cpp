// Fig. 6: average conversion time (Docker image -> Gear image) per series,
// in ascending order of average uncompressed image size, on the HDD model —
// plus the HDD vs SSD comparison the paper reports for the `node` series
// (105 s -> 36 s, a 65.7% reduction).
//
// Paper values: ~46 s average on HDD; time proportional to image size.
#include <algorithm>
#include <cmath>

#include "bench_common.hpp"

using namespace gear;

int main() {
  bench::Env e = bench::env();
  bench::print_title("Fig. 6: image conversion time per series", e);

  workload::CorpusGenerator gen(e.seed, e.scale);
  GearConverter converter;

  struct Row {
    std::string name;
    std::uint64_t avg_size = 0;  // scaled bytes
    double hdd_seconds = 0;
    double ssd_seconds = 0;
  };
  std::vector<Row> rows;

  for (const auto& spec : bench::corpus(e)) {
    Row row;
    row.name = spec.name;
    // Average over a sample of versions (conversion time is per-image; the
    // paper averages the whole series).
    int versions = std::min(spec.versions, 5);
    for (int v = 0; v < versions; ++v) {
      docker::Image image = gen.generate_image(spec, v);
      row.avg_size += image.uncompressed_size();

      sim::SimClock hdd_clock;
      sim::DiskModel hdd = sim::DiskModel::scaled_hdd(hdd_clock, e.scale);
      double t_hdd = 0;
      converter.convert_timed(image, hdd, &t_hdd);
      row.hdd_seconds += t_hdd;

      sim::SimClock ssd_clock;
      sim::DiskModel ssd = sim::DiskModel::scaled_ssd(ssd_clock, e.scale);
      double t_ssd = 0;
      converter.convert_timed(image, ssd, &t_ssd);
      row.ssd_seconds += t_ssd;
    }
    row.avg_size /= static_cast<std::uint64_t>(versions);
    row.hdd_seconds /= versions;
    row.ssd_seconds /= versions;
    rows.push_back(row);
  }

  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.avg_size < b.avg_size; });

  std::vector<int> w = {20, 14, 12, 12, 10};
  bench::print_row({"series", "avg size(paper)", "hdd conv", "ssd conv",
                    "ssd gain"},
                   w);
  bench::print_rule(w);
  double total_hdd = 0;
  for (const Row& r : rows) {
    total_hdd += r.hdd_seconds;
    bench::print_row(
        {r.name, bench::full_scale_size(r.avg_size, e.scale),
         format_duration(r.hdd_seconds), format_duration(r.ssd_seconds),
         format_percent(1.0 - r.ssd_seconds / r.hdd_seconds)},
        w);
  }
  bench::print_rule(w);
  std::printf("average HDD conversion time: %s   (paper: ~46 s)\n",
              format_duration(total_hdd / static_cast<double>(rows.size()))
                  .c_str());

  // Correlation between size and time (the paper's "proportional" claim).
  double n = static_cast<double>(rows.size());
  double sx = 0, sy = 0, sxy = 0, sxx = 0, syy = 0;
  for (const Row& r : rows) {
    double x = static_cast<double>(r.avg_size);
    double y = r.hdd_seconds;
    sx += x; sy += y; sxy += x * y; sxx += x * x; syy += y * y;
  }
  double corr = (n * sxy - sx * sy) /
                std::sqrt((n * sxx - sx * sx) * (n * syy - sy * sy));
  std::printf("size-time correlation: %.3f (expected: close to 1 — "
              "conversion time proportional to image size)\n", corr);

  // Wall-clock leg: the same conversions serial vs. parallel (real time,
  // not the disk model). The ConversionStats must match exactly — the
  // parallel path only fans out pure per-file hashing.
  std::size_t workers = bench::parallel_workers();
  std::vector<docker::Image> images;
  for (const auto& spec : bench::corpus(e)) {
    int versions = std::min(spec.versions, 3);
    for (int v = 0; v < versions; ++v) {
      images.push_back(gen.generate_image(spec, v));
    }
  }

  auto run_leg = [&images](const util::Concurrency& c, ConversionStats* sum) {
    GearConverter conv;
    conv.set_concurrency(c);
    for (const docker::Image& image : images) {
      ConversionStats s = conv.convert(image).stats;
      sum->files_seen += s.files_seen;
      sum->files_unique += s.files_unique;
      sum->collisions += s.collisions;
      sum->bytes_seen += s.bytes_seen;
      sum->index_wire_bytes += s.index_wire_bytes;
    }
  };

  ConversionStats serial_stats, parallel_stats;
  double t_serial = bench::wall_seconds(
      [&] { run_leg(util::Concurrency::serial(), &serial_stats); });
  util::Concurrency par;
  par.workers = workers;
  double t_parallel =
      bench::wall_seconds([&] { run_leg(par, &parallel_stats); });

  bool identical = serial_stats.files_seen == parallel_stats.files_seen &&
                   serial_stats.files_unique == parallel_stats.files_unique &&
                   serial_stats.collisions == parallel_stats.collisions &&
                   serial_stats.bytes_seen == parallel_stats.bytes_seen &&
                   serial_stats.index_wire_bytes ==
                       parallel_stats.index_wire_bytes;
  std::printf("\nwall-clock conversion of %zu images: serial %.3f s, "
              "%zu workers %.3f s (%.2fx), stats identical: %s\n",
              images.size(), t_serial, workers, t_parallel,
              t_serial / t_parallel, identical ? "yes" : "NO");

  Json doc;
  doc["bench"] = "fig6_conversion";
  doc["scale"] = e.scale;
  doc["seed"] = e.seed;
  doc["workers"] = static_cast<std::int64_t>(workers);
  doc["images_converted"] = static_cast<std::int64_t>(images.size());
  doc["serial_wall_seconds"] = t_serial;
  doc["parallel_wall_seconds"] = t_parallel;
  doc["wall_speedup"] = t_serial / t_parallel;
  doc["stats_identical"] = identical;
  doc["avg_hdd_sim_seconds"] = total_hdd / static_cast<double>(rows.size());
  doc["size_time_correlation"] = corr;
  JsonArray series;
  for (const Row& r : rows) {
    Json row;
    row["series"] = r.name;
    row["avg_size_bytes"] = r.avg_size;
    row["hdd_sim_seconds"] = r.hdd_seconds;
    row["ssd_sim_seconds"] = r.ssd_seconds;
    series.push_back(std::move(row));
  }
  doc["series"] = std::move(series);
  bench::write_json("BENCH_fig6.json", doc);
  return identical ? 0 : 1;
}
