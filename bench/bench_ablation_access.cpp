// Ablation: sensitivity to the necessary-data fraction.
//
// The paper cites 6.4%–33.3% of an image as what on-demand formats actually
// download (§II-D); Gear's win hinges on that fraction being small. This
// bench sweeps the access fraction well past the cited range and reports
// Gear's speedup over Docker at two bandwidths — locating the break-even
// point where lazy pulling stops paying.
#include "bench_common.hpp"
#include "docker/client.hpp"

using namespace gear;

int main() {
  bench::Env e = bench::env();
  bench::print_title("Ablation: necessary-data fraction sensitivity", e);

  workload::CorpusGenerator gen(e.seed, e.scale);
  workload::SeriesSpec spec;
  for (const auto& s : workload::table1_corpus()) {
    if (s.name == "mysql") spec = s;
  }

  docker::DockerRegistry classic;
  docker::DockerRegistry index_registry;
  GearRegistry file_registry;
  docker::Image image = gen.generate_image(spec, 0);
  classic.push_image(image);
  push_gear_image(GearConverter().convert(image).image, index_registry,
                  file_registry);
  vfs::FileTree flat = image.flatten();

  const double fractions[] = {0.05, 0.10, 0.20, 0.33, 0.50, 0.75, 1.00};
  const double bandwidths[] = {904.0, 20.0};

  std::vector<int> w = {10, 14, 14, 12, 14, 14, 12};
  bench::print_row({"fraction", "docker@904", "gear@904", "speedup",
                    "docker@20", "gear@20", "speedup"},
                   w);
  bench::print_rule(w);

  for (double fraction : fractions) {
    workload::AccessProfile profile;
    profile.data_fraction = fraction;
    profile.core_bias = spec.access_core_bias;
    profile.seed = 31337;
    workload::AccessSet access = workload::derive_access_set(flat, profile);

    std::vector<std::string> cells = {format_percent(fraction)};
    for (double mbps : bandwidths) {
      double docker_total, gear_total;
      {
        sim::SimClock c;
        sim::NetworkLink l = sim::scaled_link(c, mbps, e.scale);
        sim::DiskModel d = sim::DiskModel::scaled_hdd(c, e.scale);
        docker::DockerClient client(classic, l, d);
        docker_total = client.deploy("mysql:v0", access).total_seconds();
      }
      {
        sim::SimClock c;
        sim::NetworkLink l = sim::scaled_link(c, mbps, e.scale);
        sim::DiskModel d = sim::DiskModel::scaled_hdd(c, e.scale);
        GearClient client(index_registry, file_registry, l, d);
        gear_total = client.deploy("mysql:v0", access).total_seconds();
      }
      cells.push_back(format_duration(docker_total));
      cells.push_back(format_duration(gear_total));
      cells.push_back(format_speedup(docker_total / gear_total));
    }
    bench::print_row(cells, w);
  }

  std::printf("\nexpected shape: speedup decays as the task touches more of "
              "the image; even at 100%% Gear roughly matches Docker (same "
              "bytes, no unpack of unused layers), so lazy pulling never "
              "loses badly — it just stops winning\n");
  return 0;
}
