// Fig. 9: deployment time (pull + run) under different network bandwidths,
// for Docker, Gear without a local cache, and Gear with a warm shared cache.
//
// Paper speedups over Docker (averaged over all images):
//   904 Mbps: 1.64x (cache) / 1.4x (no cache)
//   100 Mbps: 2.61x / 1.92x
//    20 Mbps: 3.45x / 2.23x
//     5 Mbps: 5.01x / 2.95x
// Shapes: Gear's pull phase is tiny and its run phase longer than Docker's;
// the advantage grows as bandwidth shrinks.
#include "bench_common.hpp"
#include "docker/client.hpp"

using namespace gear;

namespace {

struct Phase {
  double pull = 0;
  double run = 0;
  double total() const { return pull + run; }
};

}  // namespace

int main() {
  bench::Env e = bench::env();
  bench::print_title("Fig. 9: deployment time under different bandwidths", e);

  workload::CorpusGenerator gen(e.seed, e.scale);
  std::vector<workload::SeriesSpec> all = bench::corpus(e);

  docker::DockerRegistry classic;
  docker::DockerRegistry index_registry;
  GearRegistry file_registry;

  // Ingest: two versions per series (warm-up version + measured version).
  GearConverter converter;
  for (const auto& spec : all) {
    for (int v = 0; v < std::min(spec.versions, 2); ++v) {
      docker::Image image = gen.generate_image(spec, v);
      classic.push_image(image);
      push_gear_image(converter.convert(image).image, index_registry,
                      file_registry);
    }
  }

  const double paper_cache[] = {1.64, 2.61, 3.45, 5.01};
  const double paper_nocache[] = {1.40, 1.92, 2.23, 2.95};
  const double bandwidths[] = {904.0, 100.0, 20.0, 5.0};

  for (int bi = 0; bi < 4; ++bi) {
    double mbps = bandwidths[bi];
    Phase docker_avg, nocache_avg, cache_avg;
    int n = 0;

    for (const auto& spec : all) {
      if (spec.versions < 2) continue;
      workload::AccessSet warm_access = gen.access_set(spec, 0);
      workload::AccessSet access = gen.access_set(spec, 1);
      std::string warm_ref = spec.name + ":v0";
      std::string ref = spec.name + ":v1";

      // Docker: cold client deploys the target image (full pull).
      {
        sim::SimClock c;
        sim::NetworkLink l = sim::scaled_link(c, mbps, e.scale);
        sim::DiskModel d = sim::DiskModel::scaled_hdd(c, e.scale);
        docker::DockerClient client(classic, l, d);
        docker::DeployStats s = client.deploy(ref, access);
        docker_avg.pull += s.pull.seconds;
        docker_avg.run += s.run_seconds;
      }
      // Gear without local cache: cold client.
      {
        sim::SimClock c;
        sim::NetworkLink l = sim::scaled_link(c, mbps, e.scale);
        sim::DiskModel d = sim::DiskModel::scaled_hdd(c, e.scale);
        GearClient client(index_registry, file_registry, l, d);
        docker::DeployStats s = client.deploy(ref, access);
        nocache_avg.pull += s.pull.seconds;
        nocache_avg.run += s.run_seconds;
      }
      // Gear with cache warmed by the previous version of the series.
      {
        sim::SimClock c;
        sim::NetworkLink l = sim::scaled_link(c, mbps, e.scale);
        sim::DiskModel d = sim::DiskModel::scaled_hdd(c, e.scale);
        GearClient client(index_registry, file_registry, l, d);
        client.deploy(warm_ref, warm_access);  // not measured
        docker::DeployStats s = client.deploy(ref, access);
        cache_avg.pull += s.pull.seconds;
        cache_avg.run += s.run_seconds;
      }
      ++n;
    }

    docker_avg.pull /= n; docker_avg.run /= n;
    nocache_avg.pull /= n; nocache_avg.run /= n;
    cache_avg.pull /= n; cache_avg.run /= n;

    std::printf("-- %.0f Mbps --\n", mbps);
    std::vector<int> wd = {16, 12, 12, 12, 18};
    bench::print_row({"system", "pull", "run", "total", "speedup (paper)"},
                     wd);
    bench::print_rule(wd);
    bench::print_row({"docker", format_duration(docker_avg.pull),
                      format_duration(docker_avg.run),
                      format_duration(docker_avg.total()), "1.00x"},
                     wd);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s (%.2fx)",
                  format_speedup(docker_avg.total() / nocache_avg.total())
                      .c_str(),
                  paper_nocache[bi]);
    bench::print_row({"gear (no cache)", format_duration(nocache_avg.pull),
                      format_duration(nocache_avg.run),
                      format_duration(nocache_avg.total()), buf},
                     wd);
    std::snprintf(buf, sizeof(buf), "%s (%.2fx)",
                  format_speedup(docker_avg.total() / cache_avg.total())
                      .c_str(),
                  paper_cache[bi]);
    bench::print_row({"gear (cache)", format_duration(cache_avg.pull),
                      format_duration(cache_avg.run),
                      format_duration(cache_avg.total()), buf},
                     wd);
    std::printf("\n");
  }

  std::printf("expected shape: Gear pull << Docker pull, Gear run > Docker "
              "run, total speedup grows as bandwidth drops, cache > no-cache\n");
  return 0;
}
