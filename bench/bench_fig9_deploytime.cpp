// Fig. 9: deployment time (pull + run) under different network bandwidths,
// for Docker, Gear without a local cache, and Gear with a warm shared cache.
//
// Paper speedups over Docker (averaged over all images):
//   904 Mbps: 1.64x (cache) / 1.4x (no cache)
//   100 Mbps: 2.61x / 1.92x
//    20 Mbps: 3.45x / 2.23x
//     5 Mbps: 5.01x / 2.95x
// Shapes: Gear's pull phase is tiny and its run phase longer than Docker's;
// the advantage grows as bandwidth shrinks.
#include "bench_common.hpp"
#include "docker/client.hpp"
#include "net/remote_registry.hpp"
#include "net/transport.hpp"

using namespace gear;

namespace {

struct Phase {
  double pull = 0;
  double run = 0;
  double total() const { return pull + run; }
};

}  // namespace

int main() {
  bench::Env e = bench::env();
  bench::print_title("Fig. 9: deployment time under different bandwidths", e);

  workload::CorpusGenerator gen(e.seed, e.scale);
  std::vector<workload::SeriesSpec> all = bench::corpus(e);

  docker::DockerRegistry classic;
  docker::DockerRegistry index_registry;
  GearRegistry file_registry;

  // Ingest: two versions per series (warm-up version + measured version).
  GearConverter converter;
  for (const auto& spec : all) {
    for (int v = 0; v < std::min(spec.versions, 2); ++v) {
      docker::Image image = gen.generate_image(spec, v);
      classic.push_image(image);
      push_gear_image(converter.convert(image).image, index_registry,
                      file_registry);
    }
  }

  const double paper_cache[] = {1.64, 2.61, 3.45, 5.01};
  const double paper_nocache[] = {1.40, 1.92, 2.23, 2.95};
  const double bandwidths[] = {904.0, 100.0, 20.0, 5.0};
  JsonArray bw_rows;

  for (int bi = 0; bi < 4; ++bi) {
    double mbps = bandwidths[bi];
    Phase docker_avg, nocache_avg, cache_avg;
    int n = 0;

    for (const auto& spec : all) {
      if (spec.versions < 2) continue;
      workload::AccessSet warm_access = gen.access_set(spec, 0);
      workload::AccessSet access = gen.access_set(spec, 1);
      std::string warm_ref = spec.name + ":v0";
      std::string ref = spec.name + ":v1";

      // Docker: cold client deploys the target image (full pull).
      {
        sim::SimClock c;
        sim::NetworkLink l = sim::scaled_link(c, mbps, e.scale);
        sim::DiskModel d = sim::DiskModel::scaled_hdd(c, e.scale);
        docker::DockerClient client(classic, l, d);
        docker::DeployStats s = client.deploy(ref, access);
        docker_avg.pull += s.pull.seconds;
        docker_avg.run += s.run_seconds;
      }
      // Gear without local cache: cold client.
      {
        sim::SimClock c;
        sim::NetworkLink l = sim::scaled_link(c, mbps, e.scale);
        sim::DiskModel d = sim::DiskModel::scaled_hdd(c, e.scale);
        GearClient client(index_registry, file_registry, l, d);
        docker::DeployStats s = client.deploy(ref, access);
        nocache_avg.pull += s.pull.seconds;
        nocache_avg.run += s.run_seconds;
      }
      // Gear with cache warmed by the previous version of the series.
      {
        sim::SimClock c;
        sim::NetworkLink l = sim::scaled_link(c, mbps, e.scale);
        sim::DiskModel d = sim::DiskModel::scaled_hdd(c, e.scale);
        GearClient client(index_registry, file_registry, l, d);
        client.deploy(warm_ref, warm_access);  // not measured
        docker::DeployStats s = client.deploy(ref, access);
        cache_avg.pull += s.pull.seconds;
        cache_avg.run += s.run_seconds;
      }
      ++n;
    }

    docker_avg.pull /= n; docker_avg.run /= n;
    nocache_avg.pull /= n; nocache_avg.run /= n;
    cache_avg.pull /= n; cache_avg.run /= n;

    std::printf("-- %.0f Mbps --\n", mbps);
    std::vector<int> wd = {16, 12, 12, 12, 18};
    bench::print_row({"system", "pull", "run", "total", "speedup (paper)"},
                     wd);
    bench::print_rule(wd);
    bench::print_row({"docker", format_duration(docker_avg.pull),
                      format_duration(docker_avg.run),
                      format_duration(docker_avg.total()), "1.00x"},
                     wd);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s (%.2fx)",
                  format_speedup(docker_avg.total() / nocache_avg.total())
                      .c_str(),
                  paper_nocache[bi]);
    bench::print_row({"gear (no cache)", format_duration(nocache_avg.pull),
                      format_duration(nocache_avg.run),
                      format_duration(nocache_avg.total()), buf},
                     wd);
    std::snprintf(buf, sizeof(buf), "%s (%.2fx)",
                  format_speedup(docker_avg.total() / cache_avg.total())
                      .c_str(),
                  paper_cache[bi]);
    bench::print_row({"gear (cache)", format_duration(cache_avg.pull),
                      format_duration(cache_avg.run),
                      format_duration(cache_avg.total()), buf},
                     wd);
    std::printf("\n");

    Json row;
    row["mbps"] = mbps;
    row["docker_total_seconds"] = docker_avg.total();
    row["gear_nocache_total_seconds"] = nocache_avg.total();
    row["gear_cache_total_seconds"] = cache_avg.total();
    row["speedup_nocache"] = docker_avg.total() / nocache_avg.total();
    row["speedup_cache"] = docker_avg.total() / cache_avg.total();
    bw_rows.push_back(std::move(row));
  }

  std::printf("expected shape: Gear pull << Docker pull, Gear run > Docker "
              "run, total speedup grows as bandwidth drops, cache > no-cache\n");

  // Wall-clock leg: full materialization (pull + prefetch of every file)
  // serial vs. parallel decompress workers. The simulated timings and fetch
  // counts must be identical at any width — only real time may differ.
  std::size_t workers = bench::parallel_workers();
  struct LegResult {
    std::size_t fetched = 0;
    std::uint64_t bytes = 0;
    double sim_seconds = 0;
    double wall = 0;
  };
  auto run_leg = [&](const util::Concurrency& c) {
    LegResult r;
    r.wall = bench::wall_seconds([&] {
      for (const auto& spec : all) {
        sim::SimClock clk;
        sim::NetworkLink l = sim::scaled_link(clk, 904.0, e.scale);
        sim::DiskModel d = sim::DiskModel::scaled_hdd(clk, e.scale);
        GearClient client(index_registry, file_registry, l, d);
        client.set_concurrency(c);
        std::string ref = spec.name + ":v0";
        client.pull(ref);
        auto got = client.prefetch_remaining(ref);
        r.fetched += got.first;
        r.bytes += got.second;
        r.sim_seconds += clk.now();
      }
    });
    return r;
  };

  LegResult serial = run_leg(util::Concurrency::serial());
  util::Concurrency par;
  par.workers = workers;
  LegResult parallel = run_leg(par);
  bool identical = serial.fetched == parallel.fetched &&
                   serial.bytes == parallel.bytes &&
                   serial.sim_seconds == parallel.sim_seconds;
  std::printf("\nwall-clock full materialization: serial %.3f s, %zu workers "
              "%.3f s (%.2fx), simulated outcome identical: %s\n",
              serial.wall, workers, parallel.wall,
              serial.wall / parallel.wall, identical ? "yes" : "NO");

  // Transport leg: full materialization with the registry behind the wire
  // protocol at 100 Mbps, per-file (batch = 1) versus batched (batch = 64)
  // download round trips. Same files, same compressed bytes — the deploy
  // time difference is pure round-trip latency.
  struct TransportTime {
    std::size_t fetched = 0;
    std::uint64_t bytes = 0;
    std::uint64_t download_round_trips = 0;
    double sim_seconds = 0;
  };
  auto run_transport = [&](std::size_t batch_files) {
    TransportTime r;
    for (const auto& spec : all) {
      sim::SimClock clk;
      sim::NetworkLink l = sim::scaled_link(clk, 100.0, e.scale);
      sim::DiskModel d = sim::DiskModel::scaled_hdd(clk, e.scale);
      net::LoopbackTransport transport(file_registry, &l);
      net::RemoteGearRegistry remote(transport, 3, /*verify_content=*/false);
      GearClient client(index_registry, remote, l, d);
      client.set_download_batch_files(batch_files);
      std::string ref = spec.name + ":v0";
      client.pull(ref);
      auto got = client.prefetch_remaining(ref);
      r.fetched += got.first;
      r.bytes += got.second;
      r.download_round_trips += transport.server_stats().download_round_trips;
      r.sim_seconds += clk.now();
    }
    return r;
  };
  TransportTime t_per_file = run_transport(1);
  TransportTime t_batched = run_transport(64);
  bool transport_identical = t_per_file.fetched == t_batched.fetched &&
                             t_per_file.bytes == t_batched.bytes;
  std::printf("\ntransport materialization at 100 Mbps: per-file %s "
              "(%llu round trips), batched %s (%llu round trips), "
              "%.2fx faster, transfers identical: %s\n",
              format_duration(t_per_file.sim_seconds).c_str(),
              static_cast<unsigned long long>(t_per_file.download_round_trips),
              format_duration(t_batched.sim_seconds).c_str(),
              static_cast<unsigned long long>(t_batched.download_round_trips),
              t_per_file.sim_seconds / t_batched.sim_seconds,
              transport_identical ? "yes" : "NO");

  Json doc;
  doc["bench"] = "fig9_deploytime";
  doc["scale"] = e.scale;
  doc["seed"] = e.seed;
  doc["workers"] = static_cast<std::int64_t>(workers);
  doc["bandwidths"] = std::move(bw_rows);
  Json wall;
  wall["serial_wall_seconds"] = serial.wall;
  wall["parallel_wall_seconds"] = parallel.wall;
  wall["wall_speedup"] = serial.wall / parallel.wall;
  wall["files_fetched"] = static_cast<std::int64_t>(serial.fetched);
  wall["bytes_fetched"] = serial.bytes;
  wall["sim_seconds"] = serial.sim_seconds;
  wall["sim_identical"] = identical;
  doc["materialization_wall"] = std::move(wall);
  Json transport_json;
  transport_json["per_file_seconds"] = t_per_file.sim_seconds;
  transport_json["per_file_round_trips"] =
      static_cast<std::int64_t>(t_per_file.download_round_trips);
  transport_json["batched_seconds"] = t_batched.sim_seconds;
  transport_json["batched_round_trips"] =
      static_cast<std::int64_t>(t_batched.download_round_trips);
  transport_json["speedup"] = t_per_file.sim_seconds / t_batched.sim_seconds;
  transport_json["identical"] = transport_identical;
  doc["transport_materialization"] = std::move(transport_json);
  bench::write_json("BENCH_fig9.json", doc);
  return (identical && transport_identical) ? 0 : 1;
}
