// Micro-benchmarks (google-benchmark) for the primitives every experiment
// rests on: hashing, compression, tar, tree diff/union, index round-trips.
#include <benchmark/benchmark.h>

#include "compress/codec.hpp"
#include "docker/layer.hpp"
#include "docker/overlay.hpp"
#include "gear/index.hpp"
#include "tar/tar.hpp"
#include "util/md5.hpp"
#include "util/rng.hpp"
#include "util/sha256.hpp"
#include "vfs/tree_diff.hpp"
#include "vfs/tree_serialize.hpp"

namespace {

using namespace gear;

Bytes test_data(std::size_t n, double compressibility) {
  Rng rng(99);
  return rng.next_bytes(n, compressibility);
}

vfs::FileTree bench_tree(int files) {
  Rng rng(7);
  vfs::FileTree t;
  for (int i = 0; i < files; ++i) {
    t.add_file("dir" + std::to_string(i % 16) + "/f" + std::to_string(i),
               rng.next_bytes(rng.next_range(64, 8192), 0.3));
  }
  return t;
}

void BM_Md5(benchmark::State& state) {
  Bytes data = test_data(static_cast<std::size_t>(state.range(0)), 0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Md5::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Md5)->Arg(4096)->Arg(262144);

void BM_Sha256(benchmark::State& state) {
  Bytes data = test_data(static_cast<std::size_t>(state.range(0)), 0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(4096)->Arg(262144);

void BM_LzssCompress(benchmark::State& state) {
  Bytes data = test_data(262144, static_cast<double>(state.range(0)) / 100.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compress(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_LzssCompress)->Arg(0)->Arg(30)->Arg(70);

void BM_LzssDecompress(benchmark::State& state) {
  Bytes frame = compress(test_data(262144, 0.5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(decompress(frame));
  }
}
BENCHMARK(BM_LzssDecompress);

void BM_TarRoundTrip(benchmark::State& state) {
  vfs::FileTree t = bench_tree(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Bytes archive = tar::archive_tree(t);
    benchmark::DoNotOptimize(tar::extract_tree(archive));
  }
}
BENCHMARK(BM_TarRoundTrip)->Arg(64)->Arg(512);

void BM_LayerFromTree(benchmark::State& state) {
  vfs::FileTree t = bench_tree(256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(docker::Layer::from_tree(t));
  }
}
BENCHMARK(BM_LayerFromTree);

void BM_TreeDiff(benchmark::State& state) {
  vfs::FileTree base = bench_tree(512);
  vfs::FileTree target = base;
  target.add_file("dir0/new", to_bytes("x"));
  target.remove("dir1/f1");
  for (auto _ : state) {
    benchmark::DoNotOptimize(vfs::diff_trees(base, target));
  }
}
BENCHMARK(BM_TreeDiff);

void BM_OverlayLookup(benchmark::State& state) {
  vfs::FileTree l0 = bench_tree(512);
  vfs::FileTree l1;
  l1.add_file("dir3/f3", to_bytes("override"));
  docker::OverlayMount mount({&l0, &l1});
  int i = 0;
  for (auto _ : state) {
    std::string path = "dir" + std::to_string(i % 16) + "/f" +
                       std::to_string(i % 512);
    benchmark::DoNotOptimize(mount.lookup(path));
    ++i;
  }
}
BENCHMARK(BM_OverlayLookup);

void BM_IndexSerializeParse(benchmark::State& state) {
  vfs::FileTree t = bench_tree(static_cast<int>(state.range(0)));
  GearIndex index = GearIndex::from_root_fs(
      t, [](const std::string&, const Bytes& content) {
        return default_hasher().fingerprint(content);
      });
  for (auto _ : state) {
    Bytes data = vfs::serialize_tree(index.tree());
    benchmark::DoNotOptimize(vfs::deserialize_tree(data));
  }
}
BENCHMARK(BM_IndexSerializeParse)->Arg(128)->Arg(1024);

void BM_IndexWireRoundTrip(benchmark::State& state) {
  vfs::FileTree t = bench_tree(256);
  GearIndex index = GearIndex::from_root_fs(
      t, [](const std::string&, const Bytes& content) {
        return default_hasher().fingerprint(content);
      });
  for (auto _ : state) {
    vfs::FileTree wire = index.to_wire_tree();
    benchmark::DoNotOptimize(GearIndex::from_wire_tree(wire));
  }
}
BENCHMARK(BM_IndexWireRoundTrip);

}  // namespace

BENCHMARK_MAIN();
