// Ablation: the shared local cache — capacity and eviction policy.
//
// DESIGN.md §6: the paper lets users bound the level-1 cache and choose
// FIFO or LRU ("users can decide how much storage it can occupy and can
// apply replacement algorithms on it"). This bench quantifies that choice:
// a rolling deployment over several series under different cache capacities
// and policies, reporting hit rate and bytes fetched from the registry.
#include "bench_common.hpp"
#include "docker/client.hpp"

using namespace gear;

int main() {
  bench::Env e = bench::env();
  bench::print_title("Ablation: shared cache capacity and eviction policy", e);

  workload::CorpusGenerator gen(e.seed, e.scale);
  std::vector<workload::SeriesSpec> specs = workload::small_corpus(2, 6);

  docker::DockerRegistry index_registry;
  GearRegistry file_registry;
  GearConverter converter;
  std::uint64_t corpus_bytes = 0;
  for (const auto& spec : specs) {
    for (int v = 0; v < spec.versions; ++v) {
      docker::Image image = gen.generate_image(spec, v);
      corpus_bytes += image.flatten().stats().total_file_bytes;
      push_gear_image(converter.convert(image).image, index_registry,
                      file_registry);
    }
  }

  struct Config {
    const char* label;
    double capacity_fraction;  // of total corpus bytes; 0 = unbounded
    EvictionPolicy policy;
  };
  const Config configs[] = {
      {"unbounded", 0.0, EvictionPolicy::kLru},
      {"10% LRU", 0.10, EvictionPolicy::kLru},
      {"10% FIFO", 0.10, EvictionPolicy::kFifo},
      {"5% LRU", 0.05, EvictionPolicy::kLru},
      {"5% FIFO", 0.05, EvictionPolicy::kFifo},
      {"2% LRU", 0.02, EvictionPolicy::kLru},
      {"2% FIFO", 0.02, EvictionPolicy::kFifo},
  };

  std::vector<int> w = {12, 14, 10, 10, 12, 12};
  bench::print_row({"cache", "downloaded", "hit rate", "evictions",
                    "rejected", "deploy time"},
                   w);
  bench::print_rule(w);

  for (const Config& cfg : configs) {
    auto capacity = static_cast<std::uint64_t>(
        cfg.capacity_fraction * static_cast<double>(corpus_bytes));
    sim::SimClock c;
    sim::NetworkLink l = sim::scaled_link(c, 100.0, e.scale);
    sim::DiskModel d = sim::DiskModel::scaled_ssd(c, e.scale);
    GearClient client(index_registry, file_registry, l, d, {}, capacity,
                      cfg.policy);

    std::uint64_t downloaded = 0;
    double seconds = 0;
    // Interleave series round-robin by version: pressure on the cache comes
    // from many images sharing it, as on a busy node.
    int max_versions = 0;
    for (const auto& s : specs) max_versions = std::max(max_versions, s.versions);
    for (int v = 0; v < max_versions; ++v) {
      for (const auto& spec : specs) {
        if (v >= spec.versions) continue;
        std::string ref = spec.name + ":v" + std::to_string(v);
        docker::DeployStats s =
            client.deploy(ref, gen.access_set(spec, v));
        downloaded += s.run_bytes_downloaded;
        seconds += s.total_seconds();
        // Containers are short-lived; images of old versions get removed,
        // unpinning their files (what makes entries evictable at all).
        if (v > 0) {
          client.remove_image(spec.name + ":v" + std::to_string(v - 1));
        }
      }
    }

    const CacheStats& cs = client.store().cache().stats();
    double hit_rate = static_cast<double>(cs.hits) /
                      static_cast<double>(cs.hits + cs.misses);
    bench::print_row({cfg.label, format_size(downloaded),
                      format_percent(hit_rate), std::to_string(cs.evictions),
                      std::to_string(cs.rejected), format_duration(seconds)},
                     w);
  }

  std::printf("\nexpected shape: smaller caches download more and hit less; "
              "LRU >= FIFO at equal capacity; unbounded is the paper's "
              "default setting\n");
  return 0;
}
