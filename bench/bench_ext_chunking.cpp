// Extension bench (paper §VII future work): chunked on-demand reads for
// big files — "AI containers with big models".
//
// Scenario: an inference image carries a 64 MB weights file. The container's
// startup probes the model header and metadata (a fraction of the file)
// before deciding to page in more. Compares classic whole-file Gear
// materialization against chunked storage + range reads, and measures the
// update-path win when a new model version changes only a slice of chunks.
#include <cstdio>

#include "gear/client.hpp"
#include "gear/converter.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"

using namespace gear;

namespace {

constexpr std::uint64_t kModelBytes = 64ull * 1024 * 1024;
constexpr std::uint64_t kChunkBytes = 128 * 1024;

docker::Image model_image(const Bytes& model, const std::string& tag) {
  vfs::FileTree root;
  root.add_file("models/weights.bin", model);
  root.add_file("etc/inference.json", to_bytes("{\"batch\":8}"));
  root.add_file("bin/server", Bytes(512 * 1024, 0x3c));
  docker::ImageBuilder b;
  b.add_snapshot(root);
  return b.build("inference", tag, {});
}

}  // namespace

int main() {
  std::printf("\n=== Extension: chunked big-file reads (paper §VII) ===\n");
  std::printf("model %s, chunk size %s, link 100 Mbps (unscaled: the "
              "scenario carries its own data)\n\n",
              format_size(kModelBytes).c_str(),
              format_size(kChunkBytes).c_str());

  Rng rng(77);
  Bytes model = rng.next_bytes(kModelBytes, 0.2);
  docker::Image image = model_image(model, "v1");
  GearConverter converter;
  ConversionResult conv = converter.convert(image);

  const ChunkPolicy policy{/*threshold_bytes=*/4 * 1024 * 1024, kChunkBytes};

  struct Mode {
    const char* label;
    bool chunked;
  };
  for (Mode mode : {Mode{"plain gear (whole-file)", false},
                    Mode{"chunked gear (range reads)", true}}) {
    docker::DockerRegistry index_registry;
    GearRegistry file_registry;
    push_gear_image(conv.image, index_registry, file_registry,
                    mode.chunked ? policy : ChunkPolicy{});

    sim::SimClock clock;
    sim::NetworkLink link(clock, 100.0, 0.0005, 0.0003);
    sim::DiskModel disk = sim::DiskModel::ssd(clock);
    GearClient client(index_registry, file_registry, link, disk);
    client.pull("inference:v1");
    std::string container = client.store().create_container("inference:v1");

    // Startup probe: 256 KB header + 3 random 64 KB metadata windows.
    sim::SimTimer timer(clock);
    sim::NetworkStats before = link.stats();
    client.read_range(container, "models/weights.bin", 0, 256 * 1024).value();
    Rng probe(5);
    for (int i = 0; i < 3; ++i) {
      std::uint64_t off = probe.next_below(kModelBytes - 65536);
      client.read_range(container, "models/weights.bin", off, 65536).value();
    }
    sim::NetworkStats delta = link.stats() - before;
    std::printf("%-28s probe: %s moved in %s (%llu requests)\n", mode.label,
                format_size(delta.bytes_transferred).c_str(),
                format_duration(timer.elapsed()).c_str(),
                static_cast<unsigned long long>(delta.requests));
  }

  // Update path: v2 rewrites 5% of the model's chunks.
  Bytes model_v2 = model;
  Rng upd(99);
  for (int i = 0; i < static_cast<int>(kModelBytes / kChunkBytes / 20); ++i) {
    std::uint64_t chunk =
        upd.next_below(kModelBytes / kChunkBytes);
    Bytes fresh = upd.next_bytes(kChunkBytes, 0.2);
    std::copy(fresh.begin(), fresh.end(),
              model_v2.begin() + static_cast<std::ptrdiff_t>(chunk * kChunkBytes));
  }
  docker::Image image_v2 = model_image(model_v2, "v2");
  ConversionResult conv_v2 = converter.convert(image_v2);

  std::printf("\nmodel update (v2 rewrites ~5%% of chunks):\n");
  for (Mode mode : {Mode{"plain gear", false}, Mode{"chunked gear", true}}) {
    docker::DockerRegistry index_registry;
    GearRegistry file_registry;
    push_gear_image(conv.image, index_registry, file_registry,
                    mode.chunked ? policy : ChunkPolicy{});
    std::uint64_t before = file_registry.storage_bytes();
    push_gear_image(conv_v2.image, index_registry, file_registry,
                    mode.chunked ? policy : ChunkPolicy{});
    std::printf("  %-14s v2 adds %s to the registry\n", mode.label,
                format_size(file_registry.storage_bytes() - before).c_str());
  }

  std::printf("\nexpected shape: chunked probe moves ~1%% of the model; "
              "chunked update stores ~5%% instead of a second full copy\n");
  return 0;
}
