// Extension bench (paper §VII future work): chunked on-demand reads for
// big files — "AI containers with big models".
//
// Scenario: an inference image carries a 64 MB weights file. The container's
// startup probes the model header and metadata (a fraction of the file)
// before deciding to page in more. Compares classic whole-file Gear
// materialization against chunked storage + range reads, and measures the
// update-path win when a new model version changes only a slice of chunks.
#include <cstdio>

#include "bench_common.hpp"
#include "gear/client.hpp"
#include "gear/converter.hpp"
#include "net/remote_registry.hpp"
#include "net/transport.hpp"
#include "p2p/cluster.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"

using namespace gear;

namespace {

constexpr std::uint64_t kModelBytes = 64ull * 1024 * 1024;
constexpr std::uint64_t kChunkBytes = 128 * 1024;

docker::Image model_image(const Bytes& model, const std::string& tag) {
  vfs::FileTree root;
  root.add_file("models/weights.bin", model);
  root.add_file("etc/inference.json", to_bytes("{\"batch\":8}"));
  root.add_file("bin/server", Bytes(512 * 1024, 0x3c));
  docker::ImageBuilder b;
  b.add_snapshot(root);
  return b.build("inference", tag, {});
}

/// One full-file range read through the wire protocol at a given batch
/// width, with server-side frame accounting.
struct RangeLeg {
  std::uint64_t manifest_round_trips = 0;
  std::uint64_t chunk_round_trips = 0;
  std::uint64_t chunk_items = 0;
  std::uint64_t wire_bytes = 0;
  double read_ms = 0.0;
  Bytes content;
};

RangeLeg run_range_leg(const ConversionResult& conv, const ChunkPolicy& policy,
                       std::size_t batch) {
  docker::DockerRegistry index_registry;
  GearRegistry server;
  push_gear_image(conv.image, index_registry, server, policy);

  sim::SimClock clock;
  sim::NetworkLink link(clock, 100.0, 0.0005, 0.0003);
  sim::DiskModel disk = sim::DiskModel::ssd(clock);
  net::LoopbackTransport loopback(server, &link);
  net::RemoteGearRegistry remote(loopback);
  GearClient client(index_registry, remote, link, disk);
  client.set_range_batch_chunks(batch);
  client.pull("inference:v1");
  std::string container = client.store().create_container("inference:v1");

  RangeLeg leg;
  sim::SimTimer timer(clock);
  leg.content =
      client.read_range(container, "models/weights.bin", 0, kModelBytes)
          .value();
  leg.read_ms = timer.elapsed() * 1000.0;
  leg.wire_bytes = client.range_bytes_downloaded();
  const net::LoopbackServerStats& s = loopback.server_stats();
  leg.manifest_round_trips = s.manifest_round_trips;
  leg.chunk_round_trips = s.chunk_round_trips;
  leg.chunk_items = s.chunk_items;
  return leg;
}

/// Node1 range-reads a file node0 already holds: how many chunks came from
/// the peer, in how many LAN bursts, at what WAN cost.
struct P2pLeg {
  std::uint64_t peer_chunks = 0;
  std::uint64_t lan_bursts = 0;
  std::uint64_t wan_read_bytes = 0;
  Bytes content;
};

P2pLeg run_p2p_leg(docker::DockerRegistry& index_registry,
                   GearRegistry& file_registry, bool batch_fetch) {
  p2p::Cluster::Params params;
  params.nodes = 2;
  params.batch_peer_fetch = batch_fetch;
  p2p::Cluster cluster(index_registry, file_registry, params);
  workload::AccessSet no_access;

  std::string c0;
  cluster.deploy(0, "inference:v1", no_access, &c0);
  cluster.read_range(0, c0, "models/weights.bin", 0, kModelBytes).value();

  std::string c1;
  cluster.deploy(1, "inference:v1", no_access, &c1);
  std::uint64_t hits = cluster.peer_hits();
  std::uint64_t bursts = cluster.lan_bursts();
  std::uint64_t wan = cluster.wan_bytes();
  P2pLeg leg;
  leg.content =
      cluster.read_range(1, c1, "models/weights.bin", 0, kModelBytes).value();
  leg.peer_chunks = cluster.peer_hits() - hits;
  leg.lan_bursts = cluster.lan_bursts() - bursts;
  leg.wan_read_bytes = cluster.wan_bytes() - wan;
  return leg;
}

}  // namespace

int main() {
  std::printf("\n=== Extension: chunked big-file reads (paper §VII) ===\n");
  std::printf("model %s, chunk size %s, link 100 Mbps (unscaled: the "
              "scenario carries its own data)\n\n",
              format_size(kModelBytes).c_str(),
              format_size(kChunkBytes).c_str());

  Rng rng(77);
  Bytes model = rng.next_bytes(kModelBytes, 0.2);
  docker::Image image = model_image(model, "v1");
  GearConverter converter;
  ConversionResult conv = converter.convert(image);

  const ChunkPolicy policy{/*threshold_bytes=*/4 * 1024 * 1024, kChunkBytes};

  struct Mode {
    const char* label;
    bool chunked;
  };
  for (Mode mode : {Mode{"plain gear (whole-file)", false},
                    Mode{"chunked gear (range reads)", true}}) {
    docker::DockerRegistry index_registry;
    GearRegistry file_registry;
    push_gear_image(conv.image, index_registry, file_registry,
                    mode.chunked ? policy : ChunkPolicy{});

    sim::SimClock clock;
    sim::NetworkLink link(clock, 100.0, 0.0005, 0.0003);
    sim::DiskModel disk = sim::DiskModel::ssd(clock);
    GearClient client(index_registry, file_registry, link, disk);
    client.pull("inference:v1");
    std::string container = client.store().create_container("inference:v1");

    // Startup probe: 256 KB header + 3 random 64 KB metadata windows.
    sim::SimTimer timer(clock);
    sim::NetworkStats before = link.stats();
    client.read_range(container, "models/weights.bin", 0, 256 * 1024).value();
    Rng probe(5);
    for (int i = 0; i < 3; ++i) {
      std::uint64_t off = probe.next_below(kModelBytes - 65536);
      client.read_range(container, "models/weights.bin", off, 65536).value();
    }
    sim::NetworkStats delta = link.stats() - before;
    std::printf("%-28s probe: %s moved in %s (%llu requests)\n", mode.label,
                format_size(delta.bytes_transferred).c_str(),
                format_duration(timer.elapsed()).c_str(),
                static_cast<unsigned long long>(delta.requests));
  }

  // Update path: v2 rewrites 5% of the model's chunks.
  Bytes model_v2 = model;
  Rng upd(99);
  for (int i = 0; i < static_cast<int>(kModelBytes / kChunkBytes / 20); ++i) {
    std::uint64_t chunk =
        upd.next_below(kModelBytes / kChunkBytes);
    Bytes fresh = upd.next_bytes(kChunkBytes, 0.2);
    std::copy(fresh.begin(), fresh.end(),
              model_v2.begin() + static_cast<std::ptrdiff_t>(chunk * kChunkBytes));
  }
  docker::Image image_v2 = model_image(model_v2, "v2");
  ConversionResult conv_v2 = converter.convert(image_v2);

  std::printf("\nmodel update (v2 rewrites ~5%% of chunks):\n");
  for (Mode mode : {Mode{"plain gear", false}, Mode{"chunked gear", true}}) {
    docker::DockerRegistry index_registry;
    GearRegistry file_registry;
    push_gear_image(conv.image, index_registry, file_registry,
                    mode.chunked ? policy : ChunkPolicy{});
    std::uint64_t before = file_registry.storage_bytes();
    push_gear_image(conv_v2.image, index_registry, file_registry,
                    mode.chunked ? policy : ChunkPolicy{});
    std::printf("  %-14s v2 adds %s to the registry\n", mode.label,
                format_size(file_registry.storage_bytes() - before).c_str());
  }

  std::printf("\nexpected shape: chunked probe moves ~1%% of the model; "
              "chunked update stores ~5%% instead of a second full copy\n");

  // --- transport leg: per-chunk vs batch-64 range fetch over the wire ---
  const std::uint64_t n_chunks = kModelBytes / kChunkBytes;
  std::printf("\ntransport (wire protocol, %llu chunks):\n",
              static_cast<unsigned long long>(n_chunks));
  RangeLeg per_chunk = run_range_leg(conv, policy, 1);
  RangeLeg batch64 = run_range_leg(conv, policy, 64);
  for (const auto& [label, leg] :
       {std::pair<const char*, const RangeLeg&>{"per-chunk (batch 1)",
                                                per_chunk},
        std::pair<const char*, const RangeLeg&>{"batched (batch 64)",
                                                batch64}}) {
    std::printf("  %-20s %llu manifest + %llu chunk frames, %llu items, "
                "%s wire, read %s\n",
                label,
                static_cast<unsigned long long>(leg.manifest_round_trips),
                static_cast<unsigned long long>(leg.chunk_round_trips),
                static_cast<unsigned long long>(leg.chunk_items),
                format_size(leg.wire_bytes).c_str(),
                format_duration(leg.read_ms / 1000.0).c_str());
  }
  bool identical = per_chunk.content == batch64.content &&
                   per_chunk.content == model &&
                   per_chunk.wire_bytes == batch64.wire_bytes &&
                   per_chunk.chunk_items == batch64.chunk_items;
  double frame_reduction =
      batch64.chunk_round_trips == 0
          ? 0.0
          : static_cast<double>(per_chunk.chunk_round_trips) /
                static_cast<double>(batch64.chunk_round_trips);
  bool expected_frames =
      per_chunk.chunk_round_trips == n_chunks &&
      batch64.chunk_round_trips == (n_chunks + 63) / 64;
  std::printf("  frame reduction %.1fx (byte/wire-identical: %s)\n",
              frame_reduction, identical ? "yes" : "NO");

  // --- P2P leg: batched LAN fan-out vs legacy registry reads ---
  docker::DockerRegistry p2p_index;
  GearRegistry p2p_files;
  push_gear_image(conv.image, p2p_index, p2p_files, policy);
  P2pLeg fanout = run_p2p_leg(p2p_index, p2p_files, /*batch_fetch=*/true);
  docker::DockerRegistry legacy_index;
  GearRegistry legacy_files;
  push_gear_image(conv.image, legacy_index, legacy_files, policy);
  P2pLeg legacy = run_p2p_leg(legacy_index, legacy_files,
                              /*batch_fetch=*/false);
  bool p2p_ok = fanout.content == model && legacy.content == model &&
                fanout.peer_chunks == n_chunks && fanout.lan_bursts == 1 &&
                legacy.lan_bursts == 0;
  std::printf("\np2p second reader: batched %llu chunks from the peer in "
              "%llu LAN burst(s), WAN +%s; legacy %s over the WAN\n",
              static_cast<unsigned long long>(fanout.peer_chunks),
              static_cast<unsigned long long>(fanout.lan_bursts),
              format_size(fanout.wan_read_bytes).c_str(),
              format_size(legacy.wan_read_bytes).c_str());

  Json doc;
  doc["bench"] = "ext_chunking";
  doc["model_bytes"] = static_cast<std::int64_t>(kModelBytes);
  doc["chunk_bytes"] = static_cast<std::int64_t>(kChunkBytes);
  doc["chunks"] = static_cast<std::int64_t>(n_chunks);
  auto leg_json = [](const RangeLeg& leg) {
    Json j;
    j["manifest_round_trips"] =
        static_cast<std::int64_t>(leg.manifest_round_trips);
    j["chunk_round_trips"] = static_cast<std::int64_t>(leg.chunk_round_trips);
    j["chunk_items"] = static_cast<std::int64_t>(leg.chunk_items);
    j["wire_bytes"] = static_cast<std::int64_t>(leg.wire_bytes);
    j["read_ms"] = leg.read_ms;
    return j;
  };
  doc["transport_per_chunk"] = leg_json(per_chunk);
  doc["transport_batch64"] = leg_json(batch64);
  doc["frame_reduction"] = frame_reduction;
  doc["identical"] = identical;
  Json p2p_json;
  p2p_json["peer_chunks"] = static_cast<std::int64_t>(fanout.peer_chunks);
  p2p_json["lan_bursts"] = static_cast<std::int64_t>(fanout.lan_bursts);
  p2p_json["wan_read_bytes"] =
      static_cast<std::int64_t>(fanout.wan_read_bytes);
  p2p_json["legacy_wan_read_bytes"] =
      static_cast<std::int64_t>(legacy.wan_read_bytes);
  p2p_json["ok"] = p2p_ok;
  doc["p2p"] = p2p_json;
  bench::write_json("BENCH_chunk.json", doc);

  return (identical && expected_frames && frame_reduction >= 10.0 && p2p_ok)
             ? 0
             : 1;
}
