// Fig. 11(b): short-running workload — launch an Httpd container, serve one
// request, destroy it; repeated 100 times. Reports the average time of each
// phase for Docker and Gear.
//
// Paper: Gear has a slight edge, mostly in the destroy phase — it only
// drops the inode cache entries of the files the container actually used,
// while Docker tears down the entire image's worth of cached inodes.
// The trailing profile-prefetch section measures the payoff of the recorded
// access profile on a cold redeploy: a first run records which files the
// request path touches, a fresh client merges that profile and prefetches
// in profile order, and the hot files land ahead of the rest of the image
// with byte-identical wire work. Results merge into BENCH_prefetch.json.
#include <filesystem>
#include <set>

#include "bench_common.hpp"
#include "docker/client.hpp"
#include "gear/prefetch.hpp"
#include "util/file_io.hpp"

using namespace gear;

int main() {
  bench::Env e = bench::env();
  bench::print_title("Fig. 11b: short-running launch/request/destroy x100", e);

  workload::CorpusGenerator gen(e.seed, e.scale);
  workload::SeriesSpec httpd;
  for (const auto& s : workload::table1_corpus()) {
    if (s.name == "httpd") httpd = s;
  }

  docker::DockerRegistry classic;
  docker::DockerRegistry index_registry;
  GearRegistry file_registry;
  docker::Image image = gen.generate_image(httpd, 0);
  classic.push_image(image);
  GearConverter converter;
  push_gear_image(converter.convert(image).image, index_registry,
                  file_registry);

  workload::AccessSet access = gen.access_set(httpd, 0);
  // The single request touches a few hot files.
  workload::AccessSet request_files;
  for (std::size_t i = 0; i < access.files.size() && i < 4; ++i) {
    request_files.files.push_back(access.files[i]);
  }

  const int kIterations = 100;
  double docker_launch = 0, docker_request = 0, docker_destroy = 0;
  double gear_launch = 0, gear_request = 0, gear_destroy = 0;

  // Docker loop. The image is pulled once (first launch); subsequent
  // launches reuse the local layers — like the paper's repeated runs.
  {
    sim::SimClock c;
    sim::NetworkLink l = sim::scaled_link(c, 904.0, e.scale);
    sim::DiskModel d = sim::DiskModel::scaled_ssd(c, e.scale);
    docker::DockerClient client(classic, l, d);
    client.pull("httpd:v0");  // not measured: image present before the loop
    for (int i = 0; i < kIterations; ++i) {
      docker::DeployStats s = client.deploy("httpd:v0", access);
      docker_launch += s.total_seconds();
      sim::SimTimer t(c);
      docker::OverlayMount mount = client.mount("httpd:v0");
      for (const auto& fa : request_files.files) {
        (void)mount.read_file(fa.path).value();
        c.advance(client.params().per_file_open_seconds);
      }
      docker_request += t.elapsed();
      docker_destroy += client.destroy("httpd:v0");
    }
  }

  // Gear loop.
  {
    sim::SimClock c;
    sim::NetworkLink l = sim::scaled_link(c, 904.0, e.scale);
    sim::DiskModel d = sim::DiskModel::scaled_ssd(c, e.scale);
    GearClient client(index_registry, file_registry, l, d);
    client.pull("httpd:v0");
    for (int i = 0; i < kIterations; ++i) {
      std::string container;
      docker::DeployStats s = client.deploy("httpd:v0", access, &container);
      gear_launch += s.total_seconds();
      sim::SimTimer t(c);
      GearFileViewer viewer = client.open_viewer(container);
      for (const auto& fa : request_files.files) {
        (void)viewer.read_file(fa.path).value();
        c.advance(client.params().per_file_open_seconds);
      }
      gear_request += t.elapsed();
      gear_destroy += client.destroy(container);
    }
  }

  std::vector<int> w = {10, 12, 12, 12, 12};
  bench::print_row({"system", "launch", "request", "destroy", "total"}, w);
  bench::print_rule(w);
  bench::print_row({"docker", format_duration(docker_launch / kIterations),
                    format_duration(docker_request / kIterations),
                    format_duration(docker_destroy / kIterations),
                    format_duration((docker_launch + docker_request +
                                     docker_destroy) / kIterations)},
                   w);
  bench::print_row({"gear", format_duration(gear_launch / kIterations),
                    format_duration(gear_request / kIterations),
                    format_duration(gear_destroy / kIterations),
                    format_duration((gear_launch + gear_request +
                                     gear_destroy) / kIterations)},
                   w);

  std::printf("\ndestroy speedup (gear vs docker): %s\n",
              format_speedup(docker_destroy / gear_destroy).c_str());
  std::printf("expected shape: similar launch/request; Gear destroys faster "
              "(fewer cached inodes to drop)\n");

  // ---------------------------------------------- profile-ordered prefetch
  // First run records the access profile; a cold node merges it and
  // prefetches the whole image in profile order. Wire work is identical to
  // the legacy path walk — only the schedule moves — but the request path's
  // hot files become resident much earlier.
  std::printf("\n-- profile-ordered prefetch on a cold redeploy --\n");
  int failures = 0;

  ImageAccessProfile profile;
  {
    sim::SimClock c;
    sim::NetworkLink l = sim::scaled_link(c, 904.0, e.scale);
    sim::DiskModel d = sim::DiskModel::scaled_ssd(c, e.scale);
    GearClient recorder(index_registry, file_registry, l, d);
    recorder.deploy("httpd:v0", access);  // records first-touch profile
    profile = recorder.access_profile("httpd");
  }

  std::set<Fingerprint> hot;
  for (const auto& fa : request_files.files) hot.insert(fa.fingerprint);

  struct ProfileLeg {
    PrefetchOrder order;
    bool merge_profile = false;
    double warm_s = 0;
    double hot_warm_s = 0;      // until every request-path file landed
    double first_access_s = 0;  // until the first request-path file landed
    std::uint64_t wire_bytes = 0;
    std::uint64_t files = 0;
    std::uint64_t bytes = 0;
  };
  ProfileLeg legs[2] = {{PrefetchOrder::kPath, false},
                        {PrefetchOrder::kProfile, true}};
  for (ProfileLeg& leg : legs) {
    sim::SimClock c;
    sim::NetworkLink l = sim::scaled_link(c, 100.0, e.scale);
    sim::DiskModel d = sim::DiskModel::scaled_ssd(c, e.scale);
    GearClient client(index_registry, file_registry, l, d);
    client.set_prefetch_order(leg.order);
    client.set_download_batch_files(8);
    if (leg.merge_profile) client.merge_access_profile("httpd", profile);
    client.pull("httpd:v0");

    double t0 = c.now();
    double first_hot = -1.0;
    double last_hot = t0;
    std::size_t hot_seen = 0;
    client.set_prefetch_observer(
        [&](const Fingerprint& fp, std::uint64_t, double t) {
          if (hot.count(fp) == 0) return;
          if (first_hot < 0) first_hot = t;
          last_hot = std::max(last_hot, t);
          ++hot_seen;
        });
    std::uint64_t wire0 = l.stats().bytes_transferred;
    auto [files, bytes] = client.prefetch_remaining("httpd:v0");
    leg.warm_s = c.now() - t0;
    leg.hot_warm_s = last_hot - t0;
    leg.first_access_s = first_hot < 0 ? 0.0 : first_hot - t0;
    leg.wire_bytes = l.stats().bytes_transferred - wire0;
    leg.files = files;
    leg.bytes = bytes;
    if (hot_seen != hot.size()) {
      std::printf("FAIL: %s prefetch fetched %zu of %zu hot files\n",
                  prefetch_order_name(leg.order), hot_seen, hot.size());
      ++failures;
    }
  }

  if (legs[1].wire_bytes != legs[0].wire_bytes ||
      legs[1].files != legs[0].files || legs[1].bytes != legs[0].bytes) {
    std::printf("FAIL: profile order changed the wire work\n");
    ++failures;
  }
  if (legs[1].hot_warm_s >= legs[0].hot_warm_s) {
    std::printf("FAIL: profile order did not warm the request path earlier "
                "than the path walk\n");
    ++failures;
  }

  std::vector<int> pw = {10, 12, 12, 14, 12, 10};
  bench::print_row({"order", "full warm", "hot warm", "first access", "wire",
                    "files"},
                   pw);
  bench::print_rule(pw);
  JsonArray profile_rows;
  for (const ProfileLeg& leg : legs) {
    bench::print_row({prefetch_order_name(leg.order),
                      format_duration(leg.warm_s),
                      format_duration(leg.hot_warm_s),
                      format_duration(leg.first_access_s),
                      format_size(leg.wire_bytes),
                      std::to_string(leg.files)},
                     pw);
    Json row;
    row["order"] = prefetch_order_name(leg.order);
    row["time_to_warm_s"] = leg.warm_s;
    row["hot_warm_s"] = leg.hot_warm_s;
    row["time_to_first_access_served_s"] = leg.first_access_s;
    row["wire_bytes"] = leg.wire_bytes;
    row["prefetched_files"] = leg.files;
    row["prefetched_bytes"] = leg.bytes;
    profile_rows.push_back(std::move(row));
  }

  // Merge into BENCH_prefetch.json next to the fig10 order legs, so one
  // document carries the whole prefetch story.
  Json doc;
  if (std::filesystem::exists("BENCH_prefetch.json")) {
    doc = Json::parse(to_string(read_file_bytes("BENCH_prefetch.json")));
  } else {
    doc["bench"] = "prefetch";
    doc["scale"] = e.scale;
    doc["seed"] = e.seed;
  }
  doc["profile_redeploy"] = std::move(profile_rows);
  doc["profile_identity_ok"] = (failures == 0);
  bench::write_json("BENCH_prefetch.json", doc);

  std::printf("expected shape: identical wire bytes; profile order serves "
              "the request path's files first\n");
  return failures == 0 ? 0 : 1;
}
