// Fig. 11(b): short-running workload — launch an Httpd container, serve one
// request, destroy it; repeated 100 times. Reports the average time of each
// phase for Docker and Gear.
//
// Paper: Gear has a slight edge, mostly in the destroy phase — it only
// drops the inode cache entries of the files the container actually used,
// while Docker tears down the entire image's worth of cached inodes.
#include "bench_common.hpp"
#include "docker/client.hpp"

using namespace gear;

int main() {
  bench::Env e = bench::env();
  bench::print_title("Fig. 11b: short-running launch/request/destroy x100", e);

  workload::CorpusGenerator gen(e.seed, e.scale);
  workload::SeriesSpec httpd;
  for (const auto& s : workload::table1_corpus()) {
    if (s.name == "httpd") httpd = s;
  }

  docker::DockerRegistry classic;
  docker::DockerRegistry index_registry;
  GearRegistry file_registry;
  docker::Image image = gen.generate_image(httpd, 0);
  classic.push_image(image);
  GearConverter converter;
  push_gear_image(converter.convert(image).image, index_registry,
                  file_registry);

  workload::AccessSet access = gen.access_set(httpd, 0);
  // The single request touches a few hot files.
  workload::AccessSet request_files;
  for (std::size_t i = 0; i < access.files.size() && i < 4; ++i) {
    request_files.files.push_back(access.files[i]);
  }

  const int kIterations = 100;
  double docker_launch = 0, docker_request = 0, docker_destroy = 0;
  double gear_launch = 0, gear_request = 0, gear_destroy = 0;

  // Docker loop. The image is pulled once (first launch); subsequent
  // launches reuse the local layers — like the paper's repeated runs.
  {
    sim::SimClock c;
    sim::NetworkLink l = sim::scaled_link(c, 904.0, e.scale);
    sim::DiskModel d = sim::DiskModel::scaled_ssd(c, e.scale);
    docker::DockerClient client(classic, l, d);
    client.pull("httpd:v0");  // not measured: image present before the loop
    for (int i = 0; i < kIterations; ++i) {
      docker::DeployStats s = client.deploy("httpd:v0", access);
      docker_launch += s.total_seconds();
      sim::SimTimer t(c);
      docker::OverlayMount mount = client.mount("httpd:v0");
      for (const auto& fa : request_files.files) {
        (void)mount.read_file(fa.path).value();
        c.advance(client.params().per_file_open_seconds);
      }
      docker_request += t.elapsed();
      docker_destroy += client.destroy("httpd:v0");
    }
  }

  // Gear loop.
  {
    sim::SimClock c;
    sim::NetworkLink l = sim::scaled_link(c, 904.0, e.scale);
    sim::DiskModel d = sim::DiskModel::scaled_ssd(c, e.scale);
    GearClient client(index_registry, file_registry, l, d);
    client.pull("httpd:v0");
    for (int i = 0; i < kIterations; ++i) {
      std::string container;
      docker::DeployStats s = client.deploy("httpd:v0", access, &container);
      gear_launch += s.total_seconds();
      sim::SimTimer t(c);
      GearFileViewer viewer = client.open_viewer(container);
      for (const auto& fa : request_files.files) {
        (void)viewer.read_file(fa.path).value();
        c.advance(client.params().per_file_open_seconds);
      }
      gear_request += t.elapsed();
      gear_destroy += client.destroy(container);
    }
  }

  std::vector<int> w = {10, 12, 12, 12, 12};
  bench::print_row({"system", "launch", "request", "destroy", "total"}, w);
  bench::print_rule(w);
  bench::print_row({"docker", format_duration(docker_launch / kIterations),
                    format_duration(docker_request / kIterations),
                    format_duration(docker_destroy / kIterations),
                    format_duration((docker_launch + docker_request +
                                     docker_destroy) / kIterations)},
                   w);
  bench::print_row({"gear", format_duration(gear_launch / kIterations),
                    format_duration(gear_request / kIterations),
                    format_duration(gear_destroy / kIterations),
                    format_duration((gear_launch + gear_request +
                                     gear_destroy) / kIterations)},
                   w);

  std::printf("\ndestroy speedup (gear vs docker): %s\n",
              format_speedup(docker_destroy / gear_destroy).c_str());
  std::printf("expected shape: similar launch/request; Gear destroys faster "
              "(fewer cached inodes to drop)\n");
  return 0;
}
