// Fig. 11(a): service throughput of long-running containers (Redis,
// Memcached via a memtier-style 1:10 SET:GET loop; Nginx, Httpd via an
// ab-style request loop), normalized to Docker.
//
// Paper: Gear and Docker have similar performance — once the touched files
// are materialized, Gear's I/O path is the same Overlay2-style union.
#include "bench_common.hpp"
#include "docker/client.hpp"
#include "workload/service.hpp"

using namespace gear;

int main() {
  bench::Env e = bench::env();
  bench::print_title("Fig. 11a: long-running service throughput", e);

  workload::CorpusGenerator gen(e.seed, e.scale);
  docker::DockerRegistry classic;
  docker::DockerRegistry index_registry;
  GearRegistry file_registry;

  std::vector<int> w = {12, 16, 16, 14};
  bench::print_row({"service", "docker req/s", "gear req/s", "normalized"},
                   w);
  bench::print_rule(w);

  GearConverter converter;
  for (const workload::ServiceSpec& svc : workload::fig11_services()) {
    // Each service runs in its matching image series.
    workload::SeriesSpec spec;
    for (const auto& s : workload::table1_corpus()) {
      if (s.name == svc.name) spec = s;
    }
    docker::Image image = gen.generate_image(spec, 0);
    classic.push_image(image);
    push_gear_image(converter.convert(image).image, index_registry,
                    file_registry);

    workload::AccessSet access = gen.access_set(spec, 0);
    std::string ref = spec.name + ":v0";

    // Hot paths: the first files of the access set (config/modules/content).
    std::vector<std::string> hot;
    for (const auto& fa : access.files) {
      hot.push_back(fa.path);
      if (static_cast<int>(hot.size()) >= svc.hot_files) break;
    }

    // Docker side.
    double docker_rps = 0;
    {
      sim::SimClock c;
      sim::NetworkLink l = sim::scaled_link(c, 904.0, e.scale);
      sim::DiskModel d = sim::DiskModel::scaled_ssd(c, e.scale);
      docker::DockerClient client(classic, l, d);
      client.deploy(ref, access);
      docker::OverlayMount mount = client.mount(ref);
      workload::ServiceRun run = workload::run_service(
          c, svc, hot,
          [&mount](const std::string& path) {
            return mount.read_file(path).value();
          },
          [&mount](const std::string& path, Bytes data) {
            mount.write_file(path, std::move(data));
          },
          client.params().per_file_open_seconds);
      docker_rps = run.requests_per_second();
    }

    // Gear side.
    double gear_rps = 0;
    {
      sim::SimClock c;
      sim::NetworkLink l = sim::scaled_link(c, 904.0, e.scale);
      sim::DiskModel d = sim::DiskModel::scaled_ssd(c, e.scale);
      GearClient client(index_registry, file_registry, l, d);
      std::string container;
      client.deploy(ref, access, &container);
      GearFileViewer viewer = client.open_viewer(container);
      workload::ServiceRun run = workload::run_service(
          c, svc, hot,
          [&viewer](const std::string& path) {
            return viewer.read_file(path).value();
          },
          [&viewer](const std::string& path, Bytes data) {
            viewer.write_file(path, std::move(data));
          },
          client.params().per_file_open_seconds);
      gear_rps = run.requests_per_second();
    }

    char rate[32];
    std::snprintf(rate, sizeof(rate), "%.3f", gear_rps / docker_rps);
    char drps[32], grps[32];
    std::snprintf(drps, sizeof(drps), "%.0f", docker_rps);
    std::snprintf(grps, sizeof(grps), "%.0f", gear_rps);
    bench::print_row({svc.name, drps, grps, rate}, w);
  }

  std::printf("\nexpected shape: normalized rate ~ 1.0 for every service "
              "(paper Fig. 11a)\n");
  return 0;
}
