// Fig. 10: deployment time when the 20 versions of Tomcat are deployed one
// by one on the same client, under Docker, Slacker (block-level lazy
// baseline), and Gear, at 1000 Mbps (a) and 100 Mbps (b).
//
// Paper values: at 1000 Mbps, averages are Docker 6.08 s, Slacker 3.03 s,
// Gear 3.04 s — Gear ~= Slacker, and both beat Docker. Dropping to 100 Mbps
// multiplies Docker by ~2.7x and Slacker by ~2.6x but Gear only by ~1.2x,
// because Gear's file-level cache keeps later versions nearly free while
// Slacker re-fetches every block for every version.
#include "bench_common.hpp"
#include "docker/client.hpp"
#include "slacker/slacker.hpp"

using namespace gear;

int main() {
  bench::Env e = bench::env();
  bench::print_title("Fig. 10: rolling deployment of Tomcat versions", e);

  workload::SeriesSpec tomcat;
  for (const auto& s : workload::table1_corpus()) {
    if (s.name == "tomcat") tomcat = s;
  }
  if (e.fast) tomcat.versions = 6;

  workload::CorpusGenerator gen(e.seed, e.scale);
  docker::DockerRegistry classic;
  docker::DockerRegistry index_registry;
  GearRegistry file_registry;
  slacker::SlackerRegistry slacker_registry;

  const std::uint64_t kBlock = 512;
  GearConverter converter;
  for (int v = 0; v < tomcat.versions; ++v) {
    docker::Image image = gen.generate_image(tomcat, v);
    classic.push_image(image);
    push_gear_image(converter.convert(image).image, index_registry,
                    file_registry);
    // Fixed-size virtual device (the size cannot track the image, §II-D).
    auto capacity = static_cast<std::uint64_t>(4e9 * e.scale / kBlock);
    slacker_registry.put_image(image.manifest.reference(),
                               slacker::VirtualBlockDevice::from_tree(
                                   image.flatten(), kBlock, capacity));
  }

  double averages[2][3] = {};
  const double bandwidths[] = {1000.0, 100.0};
  for (int bi = 0; bi < 2; ++bi) {
    double mbps = bandwidths[bi];
    std::printf("-- %.0f Mbps --\n", mbps);

    sim::SimClock dc;
    sim::NetworkLink dl = sim::scaled_link(dc, mbps, e.scale);
    sim::DiskModel dd = sim::DiskModel::scaled_hdd(dc, e.scale);
    docker::DockerClient docker_client(classic, dl, dd);

    sim::SimClock sc;
    sim::NetworkLink sl = sim::scaled_link(sc, mbps, e.scale);
    sim::DiskModel sd = sim::DiskModel::scaled_hdd(sc, e.scale);
    slacker::SlackerClient slacker_client(slacker_registry, sl, sd);

    sim::SimClock gc;
    sim::NetworkLink gl = sim::scaled_link(gc, mbps, e.scale);
    sim::DiskModel gd = sim::DiskModel::scaled_hdd(gc, e.scale);
    GearClient gear_client(index_registry, file_registry, gl, gd);

    std::vector<int> w = {10, 12, 12, 12};
    bench::print_row({"version", "docker", "slacker", "gear"}, w);
    bench::print_rule(w);

    double sums[3] = {};
    for (int v = 0; v < tomcat.versions; ++v) {
      workload::AccessSet access = gen.access_set(tomcat, v);
      std::string ref = "tomcat:v" + std::to_string(v);
      double td = docker_client.deploy(ref, access).total_seconds();
      double ts = slacker_client.deploy(ref, access).total_seconds();
      double tg = gear_client.deploy(ref, access).total_seconds();
      sums[0] += td;
      sums[1] += ts;
      sums[2] += tg;
      bench::print_row({std::to_string(v + 1), format_duration(td),
                        format_duration(ts), format_duration(tg)},
                       w);
    }
    for (int i = 0; i < 3; ++i) {
      averages[bi][i] = sums[i] / tomcat.versions;
    }
    bench::print_row({"average", format_duration(averages[bi][0]),
                      format_duration(averages[bi][1]),
                      format_duration(averages[bi][2])},
                     w);
    std::printf("\n");
  }

  std::printf("paper averages at 1000 Mbps: docker 6.08 s, slacker 3.03 s, "
              "gear 3.04 s\n");
  std::printf("bandwidth drop 1000->100 Mbps slowdown: docker %.2fx "
              "(paper 2.7x), slacker %.2fx (paper 2.6x), gear %.2fx "
              "(paper 1.2x)\n",
              averages[1][0] / averages[0][0], averages[1][1] / averages[0][1],
              averages[1][2] / averages[0][2]);
  std::printf("expected shape: gear ~ slacker at high bandwidth; at low "
              "bandwidth docker and slacker degrade sharply, gear barely\n");
  return 0;
}
