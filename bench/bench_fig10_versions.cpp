// Fig. 10: deployment time when the 20 versions of Tomcat are deployed one
// by one on the same client, under Docker, Slacker (block-level lazy
// baseline), and Gear, at 1000 Mbps (a) and 100 Mbps (b).
//
// Paper values: at 1000 Mbps, averages are Docker 6.08 s, Slacker 3.03 s,
// Gear 3.04 s — Gear ~= Slacker, and both beat Docker. Dropping to 100 Mbps
// multiplies Docker by ~2.7x and Slacker by ~2.6x but Gear only by ~1.2x,
// because Gear's file-level cache keeps later versions nearly free while
// Slacker re-fetches every block for every version.
// The trailing prefetch-order section replays the same version chain as an
// upgrade workload (node running v-1 pulls v, then prefetches the rest) and
// writes BENCH_prefetch.json: across path/delta/profile orders the wire work
// is byte-identical, but delta-first makes the version delta — and the hot
// set — resident far earlier. Ordering violations flip the exit code.
#include <set>

#include "bench_common.hpp"
#include "docker/client.hpp"
#include "gear/prefetch.hpp"
#include "slacker/slacker.hpp"

using namespace gear;

int main() {
  bench::Env e = bench::env();
  bench::print_title("Fig. 10: rolling deployment of Tomcat versions", e);

  workload::SeriesSpec tomcat;
  for (const auto& s : workload::table1_corpus()) {
    if (s.name == "tomcat") tomcat = s;
  }
  if (e.fast) tomcat.versions = 6;

  workload::CorpusGenerator gen(e.seed, e.scale);
  docker::DockerRegistry classic;
  docker::DockerRegistry index_registry;
  GearRegistry file_registry;
  slacker::SlackerRegistry slacker_registry;

  const std::uint64_t kBlock = 512;
  GearConverter converter;
  // Per-version fingerprint sets, kept for the prefetch-order section's
  // delta-membership checks.
  std::vector<std::set<Fingerprint>> version_fps(tomcat.versions);
  for (int v = 0; v < tomcat.versions; ++v) {
    docker::Image image = gen.generate_image(tomcat, v);
    classic.push_image(image);
    ConversionResult conv = converter.convert(image);
    for (const auto& stub : conv.image.index.stubs()) {
      version_fps[v].insert(stub.fingerprint);
    }
    push_gear_image(conv.image, index_registry, file_registry);
    // Fixed-size virtual device (the size cannot track the image, §II-D).
    auto capacity = static_cast<std::uint64_t>(4e9 * e.scale / kBlock);
    slacker_registry.put_image(image.manifest.reference(),
                               slacker::VirtualBlockDevice::from_tree(
                                   image.flatten(), kBlock, capacity));
  }

  double averages[2][3] = {};
  const double bandwidths[] = {1000.0, 100.0};
  for (int bi = 0; bi < 2; ++bi) {
    double mbps = bandwidths[bi];
    std::printf("-- %.0f Mbps --\n", mbps);

    sim::SimClock dc;
    sim::NetworkLink dl = sim::scaled_link(dc, mbps, e.scale);
    sim::DiskModel dd = sim::DiskModel::scaled_hdd(dc, e.scale);
    docker::DockerClient docker_client(classic, dl, dd);

    sim::SimClock sc;
    sim::NetworkLink sl = sim::scaled_link(sc, mbps, e.scale);
    sim::DiskModel sd = sim::DiskModel::scaled_hdd(sc, e.scale);
    slacker::SlackerClient slacker_client(slacker_registry, sl, sd);

    sim::SimClock gc;
    sim::NetworkLink gl = sim::scaled_link(gc, mbps, e.scale);
    sim::DiskModel gd = sim::DiskModel::scaled_hdd(gc, e.scale);
    GearClient gear_client(index_registry, file_registry, gl, gd);

    std::vector<int> w = {10, 12, 12, 12};
    bench::print_row({"version", "docker", "slacker", "gear"}, w);
    bench::print_rule(w);

    double sums[3] = {};
    for (int v = 0; v < tomcat.versions; ++v) {
      workload::AccessSet access = gen.access_set(tomcat, v);
      std::string ref = "tomcat:v" + std::to_string(v);
      double td = docker_client.deploy(ref, access).total_seconds();
      double ts = slacker_client.deploy(ref, access).total_seconds();
      double tg = gear_client.deploy(ref, access).total_seconds();
      sums[0] += td;
      sums[1] += ts;
      sums[2] += tg;
      bench::print_row({std::to_string(v + 1), format_duration(td),
                        format_duration(ts), format_duration(tg)},
                       w);
    }
    for (int i = 0; i < 3; ++i) {
      averages[bi][i] = sums[i] / tomcat.versions;
    }
    bench::print_row({"average", format_duration(averages[bi][0]),
                      format_duration(averages[bi][1]),
                      format_duration(averages[bi][2])},
                     w);
    std::printf("\n");
  }

  std::printf("paper averages at 1000 Mbps: docker 6.08 s, slacker 3.03 s, "
              "gear 3.04 s\n");
  std::printf("bandwidth drop 1000->100 Mbps slowdown: docker %.2fx "
              "(paper 2.7x), slacker %.2fx (paper 2.6x), gear %.2fx "
              "(paper 1.2x)\n",
              averages[1][0] / averages[0][0], averages[1][1] / averages[0][1],
              averages[1][2] / averages[0][2]);
  std::printf("expected shape: gear ~ slacker at high bandwidth; at low "
              "bandwidth docker and slacker degrade sharply, gear barely\n");

  // ------------------------------------------------------- prefetch order
  // Upgrade workload: for every v-1 -> v transition, a fresh node lazily
  // deploys v-1 (only the hot set becomes resident), pulls v, and then
  // prefetches the remainder of v under each queue discipline. Total wire
  // bytes and fetched files are identical across orders — only the schedule
  // moves — so the differentiating metrics are how early the version delta
  // and the hot set land in the cache.
  std::printf("\n-- prefetch order (100 Mbps, node upgrading v-1 -> v) --\n");
  int failures = 0;
  struct OrderLeg {
    PrefetchOrder order;
    double warm_s = 0;          // full prefetch elapsed, summed
    double delta_warm_s = 0;    // time until the whole version delta landed
    double first_access_s = 0;  // time until the first hot-set file landed
    std::uint64_t wire_bytes = 0;
    std::uint64_t files = 0;
    std::uint64_t bytes = 0;
  };
  OrderLeg legs[3] = {{PrefetchOrder::kPath},
                      {PrefetchOrder::kDelta},
                      {PrefetchOrder::kProfile}};
  for (OrderLeg& leg : legs) {
    for (int v = 1; v < tomcat.versions; ++v) {
      sim::SimClock c;
      sim::NetworkLink l = sim::scaled_link(c, 100.0, e.scale);
      sim::DiskModel d = sim::DiskModel::scaled_ssd(c, e.scale);
      GearClient client(index_registry, file_registry, l, d);
      client.set_prefetch_order(leg.order);
      client.set_download_batch_files(8);

      std::string prev = "tomcat:v" + std::to_string(v - 1);
      std::string next = "tomcat:v" + std::to_string(v);
      client.deploy(prev, gen.access_set(tomcat, v - 1));
      client.pull(next);

      std::vector<std::pair<Fingerprint, double>> arrivals;
      client.set_prefetch_observer(
          [&arrivals](const Fingerprint& fp, std::uint64_t, double t) {
            arrivals.emplace_back(fp, t);
          });
      std::uint64_t wire0 = l.stats().bytes_transferred;
      double t0 = c.now();
      auto [files, bytes] = client.prefetch_remaining(next);
      leg.warm_s += c.now() - t0;
      leg.wire_bytes += l.stats().bytes_transferred - wire0;
      leg.files += files;
      leg.bytes += bytes;

      const std::set<Fingerprint>& cur = version_fps[v];
      const std::set<Fingerprint>& old = version_fps[v - 1];
      auto is_delta = [&cur, &old](const Fingerprint& fp) {
        return cur.count(fp) != 0 && old.count(fp) == 0;
      };
      std::set<Fingerprint> hot;
      for (const auto& fa : gen.access_set(tomcat, v).files) {
        hot.insert(fa.fingerprint);
      }
      std::size_t delta_arrived = 0;
      for (const auto& [fp, t] : arrivals) {
        (void)t;
        if (is_delta(fp)) ++delta_arrived;
      }
      double last_delta = t0;
      double first_access = -1.0;
      for (std::size_t i = 0; i < arrivals.size(); ++i) {
        const auto& [fp, t] = arrivals[i];
        if (is_delta(fp)) {
          last_delta = std::max(last_delta, t);
          // Delta-aware orders must schedule every delta member before any
          // unchanged file.
          if (leg.order != PrefetchOrder::kPath && i >= delta_arrived) {
            std::printf("FAIL: %s order fetched a delta file after an "
                        "unchanged file (v%d)\n",
                        prefetch_order_name(leg.order), v);
            ++failures;
          }
        }
        if (first_access < 0 && hot.count(fp) != 0) first_access = t;
      }
      leg.delta_warm_s += last_delta - t0;
      if (first_access >= 0) leg.first_access_s += first_access - t0;
    }
  }

  // Ordering only permutes the schedule: the wire totals must be identical.
  for (int i = 1; i < 3; ++i) {
    if (legs[i].wire_bytes != legs[0].wire_bytes ||
        legs[i].files != legs[0].files || legs[i].bytes != legs[0].bytes) {
      std::printf("FAIL: %s order changed the wire work (files %llu vs %llu, "
                  "wire bytes %llu vs %llu)\n",
                  prefetch_order_name(legs[i].order),
                  static_cast<unsigned long long>(legs[i].files),
                  static_cast<unsigned long long>(legs[0].files),
                  static_cast<unsigned long long>(legs[i].wire_bytes),
                  static_cast<unsigned long long>(legs[0].wire_bytes));
      ++failures;
    }
  }

  std::vector<int> pw = {10, 12, 13, 14, 12, 10};
  bench::print_row({"order", "full warm", "delta warm", "first access",
                    "wire", "files"},
                   pw);
  bench::print_rule(pw);
  JsonArray order_rows;
  for (const OrderLeg& leg : legs) {
    bench::print_row({prefetch_order_name(leg.order),
                      format_duration(leg.warm_s),
                      format_duration(leg.delta_warm_s),
                      format_duration(leg.first_access_s),
                      format_size(leg.wire_bytes),
                      std::to_string(leg.files)},
                     pw);
    Json row;
    row["order"] = prefetch_order_name(leg.order);
    row["time_to_warm_s"] = leg.warm_s;
    row["delta_warm_s"] = leg.delta_warm_s;
    row["time_to_first_access_served_s"] = leg.first_access_s;
    row["wire_bytes"] = leg.wire_bytes;
    row["prefetched_files"] = leg.files;
    row["prefetched_bytes"] = leg.bytes;
    order_rows.push_back(std::move(row));
  }
  if (legs[1].delta_warm_s >= legs[0].delta_warm_s) {
    std::printf("FAIL: delta order did not warm the version delta earlier "
                "than path order\n");
    ++failures;
  }

  Json doc;
  doc["bench"] = "prefetch";
  doc["scale"] = e.scale;
  doc["seed"] = e.seed;
  doc["versions"] = static_cast<std::int64_t>(tomcat.versions);
  doc["orders"] = std::move(order_rows);
  doc["identity_ok"] = (failures == 0);
  bench::write_json("BENCH_prefetch.json", doc);

  std::printf("expected shape: identical wire bytes across orders; delta "
              "and profile orders warm the version delta and serve the hot "
              "set far earlier than the path walk\n");
  return failures == 0 ? 0 : 1;
}
