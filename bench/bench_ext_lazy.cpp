// Extension bench: lazy deployment — start-before-warm containers.
//
// The paper's motivation (§I) is that downloading dominates deployment.
// Gear's index-only pull already shrinks the pull phase; DeployMode::kLazy
// goes further and declares the container READY the moment the index is
// local: every file read faults its content in through the batched demand
// path, and backfill_remaining() warms the rest of the image strictly
// behind those faults (gear/prefetch DemandLane).
//
// Method: replay the same deterministic upgrade trace over the fig10 corpus
// (Tomcat's version chain) under three strategies on identical 100 Mbps
// nodes:
//   full  — deploy + prefetch the WHOLE image before serving (a classic
//           full pull: nothing runs until everything is local);
//   warm  — deploy, bulk-warm the access set, then serve (Gear's eager
//           deploy split into its phases);
//   lazy  — deploy returns at the index pull; serving demand-faults its
//           reads; the backfill drains the remainder afterwards.
// Every leg serves the same access sets through a viewer, so per-read
// latencies are measured identically. Reported: time-to-ready,
// time-to-first-useful-byte, p50/p99 read(-fault) latency, wire bytes.
//
// Exit-code bars (also recorded in BENCH_lazy.json):
//   1. first-pull time-to-ready: full >= 5x lazy;
//   2. byte identity: after backfill, every image materialized by the lazy
//      node is byte-identical to the full-pull node's copy;
//   3. wire identity: the lazy node's total wire bytes equal the full
//      node's (demand + backfill never fetch a file twice);
//   4. preemption: a demand fault issued mid-backfill makes the drain
//      yield (backfill_yields >= 1) and no backfill batch enters the
//      registry between the fault's enter and exit.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <set>
#include <thread>

#include "bench_common.hpp"
#include "workload/trace.hpp"

using namespace gear;

namespace {

/// One simulated node: clock, WAN link, disk, client.
struct Universe {
  sim::SimClock clock;
  sim::NetworkLink link;
  sim::DiskModel disk;
  GearClient client;

  Universe(docker::DockerRegistry& index_registry,
           FileRegistryApi& file_registry, double scale)
      : link(sim::scaled_link(clock, 100.0, scale)),
        disk(sim::DiskModel::scaled_hdd(clock, scale)),
        client(index_registry, file_registry, link, disk) {}
};

enum class Leg { kFull, kWarm, kLazy };

struct LegResult {
  std::vector<double> ready_all;   // per deployment
  std::vector<double> ready_cold;  // first deployment of each version
  std::vector<double> ttfb;        // deploy start -> first serve read done
  std::vector<double> read_lat;    // every serve read
  std::vector<double> fault_lat;   // serve reads that faulted (lazy)
  std::uint64_t wire_bytes = 0;
  double makespan = 0;
  std::uint64_t demand_fetches = 0;
  std::uint64_t backfill_yields = 0;
};

LegResult run_leg(Leg leg, Universe& u,
                  const std::vector<workload::SeriesSpec>& specs,
                  const std::vector<workload::TraceEvent>& events,
                  const workload::TraceSpec& tspec,
                  workload::CorpusGenerator& gen) {
  LegResult out;
  GearClient& client = u.client;
  std::set<std::string> seen;  // versions this node already deployed once
  struct Pending {
    std::string reference;
    workload::AccessSet access;
    double t_start = 0;
  };
  std::map<std::string, Pending> by_container;
  const workload::AccessSet empty_access;

  workload::TraceResult r = workload::replay_trace(
      u.clock, events, tspec,
      [&](std::size_t series, int version) {
        std::string ref =
            specs[series].name + ":v" + std::to_string(version);
        const bool cold = seen.insert(ref).second;
        double t0 = u.clock.now();
        std::string container;
        docker::DeployStats stats;
        switch (leg) {
          case Leg::kFull: {
            stats = client.deploy(ref, empty_access, &container);
            auto [f, b] = client.prefetch_remaining(ref);
            (void)f;
            out.wire_bytes += b;
            break;
          }
          case Leg::kWarm: {
            stats = client.deploy(ref, empty_access, &container);
            auto [f, b] =
                client.warm_access(ref, gen.access_set(specs[series], version));
            (void)f;
            out.wire_bytes += b;
            break;
          }
          case Leg::kLazy:
            stats = client.deploy(ref, empty_access, &container,
                                  DeployMode::kLazy);
            break;
        }
        out.wire_bytes +=
            stats.pull.bytes_downloaded + stats.run_bytes_downloaded;
        double ready = u.clock.now() - t0;
        out.ready_all.push_back(ready);
        if (cold) out.ready_cold.push_back(ready);
        by_container[container] =
            Pending{ref, gen.access_set(specs[series], version), t0};
        return container;
      },
      [&](const std::string& container) {
        client.destroy(container);
        by_container.erase(container);
      },
      [&](const std::string& container) -> std::pair<std::size_t, std::uint64_t> {
        if (leg != Leg::kLazy) return {0, 0};
        // The background half of the lazy deployment: everything the
        // workload did not touch drains in priority order.
        auto [f, b] = client.backfill_remaining(by_container[container].reference);
        out.wire_bytes += b;
        return {f, b};
      },
      [&](const std::string& container) {
        // The workload itself: the same reads in every leg. Under lazy the
        // container is still cold here and each miss demand-faults.
        const Pending& p = by_container[container];
        GearFileViewer viewer = client.open_viewer(container);
        bool first = true;
        for (const workload::FileAccess& fa : p.access.files) {
          std::uint64_t faults_before = viewer.read_stats().faults;
          sim::SimTimer timer(u.clock);
          StatusOr<Bytes> content = viewer.read_file(fa.path);
          if (!content.ok() || content->size() != fa.size) {
            throw_error(ErrorCode::kInternal, "serve read failed: " + fa.path);
          }
          u.disk.read(content->size());
          double lat = timer.elapsed();
          out.read_lat.push_back(lat);
          if (viewer.read_stats().faults != faults_before) {
            out.fault_lat.push_back(lat);
          }
          if (first) {
            out.ttfb.push_back(u.clock.now() - p.t_start);
            first = false;
          }
        }
      });

  out.wire_bytes += client.viewer_bytes_downloaded();
  out.makespan = r.makespan_seconds;
  out.demand_fetches = client.demand_fetches();
  out.backfill_yields = client.backfill_yields();
  return out;
}

/// path -> content of every regular file in an image's (fully
/// materialized) index; fails if any stub is left.
std::map<std::string, Bytes> materialized_tree(GearClient& client,
                                               const std::string& reference,
                                               bool* all_regular) {
  std::map<std::string, Bytes> out;
  client.store().index_tree(reference).walk(
      [&](const std::string& path, const vfs::FileNode& node) {
        if (node.is_fingerprint()) *all_regular = false;
        if (node.is_regular()) out[path] = node.content();
      });
  return out;
}

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  double s = 0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

// ---------------------------------------------------------------- probe
// Registry wrapper that (a) gates the demand download of one designated
// fingerprint until released and (b) stamps a global sequence number on
// every demand enter/exit and every backfill batch entry, so the
// demand-preempts-backfill ordering is asserted on real thread interleaving
// instead of wall-clock luck.
class GatedRegistry final : public FileRegistryApi {
 public:
  explicit GatedRegistry(FileRegistryApi& inner) : inner_(inner) {}

  void arm(const Fingerprint& fp) { probe_ = fp; }
  void release_demand() {
    {
      std::lock_guard<std::mutex> lock(m_);
      released_ = true;
    }
    cv_.notify_all();
  }
  void wait_demand_started() {
    std::unique_lock<std::mutex> lock(m_);
    cv_.wait(lock, [&] { return demand_enter_seq_ >= 0; });
  }
  long demand_enter_seq() const { return demand_enter_seq_.load(); }
  long demand_exit_seq() const { return demand_exit_seq_.load(); }
  long first_batch_seq() const { return first_batch_seq_.load(); }

  bool query(const Fingerprint& fp) const override { return inner_.query(fp); }
  std::vector<std::uint8_t> query_many(
      const std::vector<Fingerprint>& fps) const override {
    return inner_.query_many(fps);
  }
  bool upload(const Fingerprint& fp, BytesView content) override {
    return inner_.upload(fp, content);
  }
  bool upload_precompressed(const Fingerprint& fp, Bytes compressed) override {
    return inner_.upload_precompressed(fp, std::move(compressed));
  }
  std::size_t upload_precompressed_batch(
      std::vector<std::pair<Fingerprint, Bytes>> items) override {
    return inner_.upload_precompressed_batch(std::move(items));
  }
  bool upload_chunked(const Fingerprint& fp, BytesView content,
                      const ChunkPolicy& policy,
                      const FingerprintHasher& hasher) override {
    return inner_.upload_chunked(fp, content, policy, hasher);
  }
  StatusOr<Bytes> download(const Fingerprint& fp) const override {
    return inner_.download(fp);
  }
  // The client's demand-fault path fetches through a singleton
  // download_batch; the backfill drain batches several files. The probe
  // fingerprint is skipped by the backfill (the demand flight owns it), so
  // a singleton batch of exactly the probe IS the demand fault.
  StatusOr<std::vector<Bytes>> download_batch(
      const std::vector<Fingerprint>& fps, util::ThreadPool* pool,
      std::uint64_t* wire_bytes_out) const override {
    auto* self = const_cast<GatedRegistry*>(this);
    const bool is_probe_fault = fps.size() == 1 && fps[0] == probe_;
    if (is_probe_fault) {
      std::unique_lock<std::mutex> lock(self->m_);
      self->demand_enter_seq_ = self->next_seq();
      self->cv_.notify_all();
      self->cv_.wait(lock, [&] { return self->released_; });
    } else {
      long seq = self->next_seq();
      long expected = -1;
      self->first_batch_seq_.compare_exchange_strong(expected, seq);
    }
    auto got = inner_.download_batch(fps, pool, wire_bytes_out);
    if (is_probe_fault) self->demand_exit_seq_ = self->next_seq();
    return got;
  }
  StatusOr<Bytes> download_range(const Fingerprint& fp, std::uint64_t offset,
                                 std::uint64_t length,
                                 std::uint64_t* wire_bytes_out) const override {
    return inner_.download_range(fp, offset, length, wire_bytes_out);
  }
  StatusOr<std::vector<Bytes>> download_chunks(
      const Fingerprint& fp, const ChunkManifest& manifest,
      const std::vector<std::uint32_t>& indices,
      std::uint64_t* wire_bytes_out) const override {
    return inner_.download_chunks(fp, manifest, indices, wire_bytes_out);
  }
  StatusOr<std::uint64_t> stored_size(const Fingerprint& fp) const override {
    return inner_.stored_size(fp);
  }
  bool is_chunked(const Fingerprint& fp) const override {
    return inner_.is_chunked(fp);
  }
  StatusOr<ChunkManifest> chunk_manifest(const Fingerprint& fp) const override {
    return inner_.chunk_manifest(fp);
  }
  bool transport_accounted() const override {
    return inner_.transport_accounted();
  }

 private:
  long next_seq() { return seq_.fetch_add(1); }

  FileRegistryApi& inner_;
  Fingerprint probe_;
  mutable std::mutex m_;
  mutable std::condition_variable cv_;
  bool released_ = false;
  std::atomic<long> seq_{0};
  std::atomic<long> demand_enter_seq_{-1};
  std::atomic<long> demand_exit_seq_{-1};
  std::atomic<long> first_batch_seq_{-1};
};

/// Live interleaving probe: a demand fault issued while the backfill drain
/// runs must make the drain yield, and no backfill batch may enter the
/// registry while the fault is in flight.
bool preemption_probe(docker::DockerRegistry& index_registry,
                      GearRegistry& file_registry,
                      const workload::SeriesSpec& spec, double scale) {
  GatedRegistry gated(file_registry);
  Universe u(index_registry, gated, scale);
  u.client.set_concurrency({1, 0});  // serial drain: yield point per batch
  u.client.set_download_batch_files(4);

  const std::string ref = spec.name + ":v0";
  std::string container;
  u.client.deploy(ref, {}, &container, DeployMode::kLazy);

  // Probe file: the first stub in the index.
  std::string probe_path;
  Fingerprint probe_fp;
  u.client.store().index_tree(ref).walk(
      [&](const std::string& path, const vfs::FileNode& node) {
        if (probe_path.empty() && node.is_fingerprint()) {
          probe_path = path;
          probe_fp = node.fingerprint();
        }
      });
  if (probe_path.empty()) return false;
  gated.arm(probe_fp);

  GearFileViewer viewer = u.client.open_viewer(container);
  std::thread demand([&] {
    StatusOr<Bytes> content = viewer.read_file(probe_path);
    if (!content.ok()) std::abort();
  });
  gated.wait_demand_started();  // the fault holds the demand lane now

  std::thread backfill([&] { u.client.backfill_remaining(ref); });

  // The drain must park in yield_to_demand before its first wire batch.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (u.client.backfill_yields() < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  bool yielded = u.client.backfill_yields() >= 1;
  bool no_batch_while_blocked = gated.first_batch_seq() < 0;
  gated.release_demand();
  demand.join();
  backfill.join();

  bool ordered = gated.demand_enter_seq() >= 0 &&
                 gated.demand_exit_seq() > gated.demand_enter_seq() &&
                 gated.first_batch_seq() > gated.demand_exit_seq();
  bool demand_counted = u.client.demand_fetches() >= 1;
  std::printf("preemption probe: yields=%llu, demand seq [%ld,%ld], first "
              "backfill batch seq %ld — %s\n",
              static_cast<unsigned long long>(u.client.backfill_yields()),
              gated.demand_enter_seq(), gated.demand_exit_seq(),
              gated.first_batch_seq(),
              (yielded && no_batch_while_blocked && ordered && demand_counted)
                  ? "demand preempts backfill"
                  : "ORDERING VIOLATION");
  return yielded && no_batch_while_blocked && ordered && demand_counted;
}

}  // namespace

int main() {
  bench::Env e = bench::env();
  bench::print_title("Extension: lazy deploy (start-before-warm)", e);

  // The fig10 upgrade corpus: Tomcat's version chain.
  workload::SeriesSpec tomcat;
  for (const auto& s : workload::table1_corpus()) {
    if (s.name == "tomcat") tomcat = s;
  }
  if (e.fast) tomcat.versions = 4;
  std::vector<workload::SeriesSpec> specs = {tomcat};

  workload::TraceSpec tspec;
  tspec.duration_seconds = e.fast ? 600 : 1800;
  tspec.mean_interarrival_seconds = 20.0;
  tspec.release_cadence_seconds = e.fast ? 150 : 90;
  tspec.max_live_containers = 8;
  tspec.seed = e.seed;
  std::vector<workload::TraceEvent> events =
      workload::generate_trace(specs, tspec);

  workload::CorpusGenerator gen(e.seed, e.scale);
  docker::DockerRegistry index_registry;
  GearRegistry file_registry;
  GearConverter converter;
  std::set<int> pushed;
  for (const auto& ev : events) {
    if (!pushed.insert(ev.version).second) continue;
    docker::Image image = gen.generate_image(tomcat, ev.version);
    push_gear_image(converter.convert(image).image, index_registry,
                    file_registry);
  }
  std::printf("trace: %zu deployments over %zu tomcat versions\n\n",
              events.size(), pushed.size());

  Universe full_u(index_registry, file_registry, e.scale);
  Universe warm_u(index_registry, file_registry, e.scale);
  Universe lazy_u(index_registry, file_registry, e.scale);
  LegResult full = run_leg(Leg::kFull, full_u, specs, events, tspec, gen);
  LegResult warm = run_leg(Leg::kWarm, warm_u, specs, events, tspec, gen);
  LegResult lazy = run_leg(Leg::kLazy, lazy_u, specs, events, tspec, gen);

  std::vector<int> w = {8, 13, 13, 13, 12, 12, 14};
  bench::print_row({"leg", "ready(cold)", "ready(mean)", "ttfb(mean)",
                    "read p50", "read p99", "wire bytes"},
                   w);
  bench::print_rule(w);
  auto row = [&](const char* name, const LegResult& r) {
    bench::print_row(
        {name, format_duration(mean(r.ready_cold)),
         format_duration(mean(r.ready_all)), format_duration(mean(r.ttfb)),
         format_duration(bench::percentile(r.read_lat, 50)),
         format_duration(bench::percentile(r.read_lat, 99)),
         format_size(r.wire_bytes)},
        w);
  };
  row("full", full);
  row("warm", warm);
  row("lazy", lazy);
  std::printf("\nlazy fault latency: p50 %s, p99 %s over %zu faults "
              "(%zu reads total)\n",
              format_duration(bench::percentile(lazy.fault_lat, 50)).c_str(),
              format_duration(bench::percentile(lazy.fault_lat, 99)).c_str(),
              lazy.fault_lat.size(), lazy.read_lat.size());

  // Bar 1: readiness on a true full pull — the trace's first deployment
  // lands on a pristine node in every leg, so full[0] is a whole image over
  // the wire while lazy[0] is the index alone. (Later "cold" versions reuse
  // the shared cache in the full leg — upgrade deltas, reported above as the
  // cold mean — so they are not full pulls.)
  double ratio = (!full.ready_all.empty() && !lazy.ready_all.empty() &&
                  lazy.ready_all.front() > 0)
                     ? full.ready_all.front() / lazy.ready_all.front()
                     : 0;
  double cold_mean_ratio = mean(lazy.ready_cold) > 0
                               ? mean(full.ready_cold) / mean(lazy.ready_cold)
                               : 0;
  bool ready_ok = ratio >= 5.0;
  std::printf("first-pull time-to-ready: full %.3fs vs lazy %.3fs — %.1fx "
              "(%s); cold-version mean %.1fx\n",
              full.ready_all.empty() ? 0 : full.ready_all.front(),
              lazy.ready_all.empty() ? 0 : lazy.ready_all.front(), ratio,
              ready_ok ? "ok, >= 5x" : "BAR FAILED, < 5x", cold_mean_ratio);

  // Bars 2+3: after backfill the lazy node holds byte-identical images and
  // moved exactly the same wire bytes as the full-pull node.
  bool identity_ok = true;
  for (int v : pushed) {
    std::string ref = "tomcat:v" + std::to_string(v);
    bool full_complete = true;
    bool lazy_complete = true;
    auto a = materialized_tree(full_u.client, ref, &full_complete);
    auto b = materialized_tree(lazy_u.client, ref, &lazy_complete);
    if (!full_complete || !lazy_complete || a != b) identity_ok = false;
  }
  bool wire_ok = full.wire_bytes == lazy.wire_bytes;
  std::printf("byte identity across %zu images: %s\n", pushed.size(),
              identity_ok ? "ok" : "MISMATCH");
  std::printf("wire identity: full %llu vs lazy %llu bytes — %s\n",
              static_cast<unsigned long long>(full.wire_bytes),
              static_cast<unsigned long long>(lazy.wire_bytes),
              wire_ok ? "ok (no file moved twice)" : "MISMATCH");

  // Bar 4: live preemption ordering.
  bool preempt_ok =
      preemption_probe(index_registry, file_registry, tomcat, e.scale);

  Json doc;
  doc["bench"] = "ext_lazy";
  doc["scale"] = e.scale;
  doc["seed"] = e.seed;
  doc["deployments"] = static_cast<std::int64_t>(events.size());
  doc["versions"] = static_cast<std::int64_t>(pushed.size());
  JsonArray legs;
  auto leg_json = [&](const char* name, const LegResult& r) {
    JsonObject o;
    o["leg"] = name;
    o["ready_cold_mean_s"] = mean(r.ready_cold);
    o["ready_mean_s"] = mean(r.ready_all);
    o["ttfb_mean_s"] = mean(r.ttfb);
    o["read_p50_s"] = bench::percentile(r.read_lat, 50);
    o["read_p99_s"] = bench::percentile(r.read_lat, 99);
    o["fault_p50_s"] = bench::percentile(r.fault_lat, 50);
    o["fault_p99_s"] = bench::percentile(r.fault_lat, 99);
    o["faults"] = static_cast<std::int64_t>(r.fault_lat.size());
    o["wire_bytes"] = r.wire_bytes;
    o["makespan_s"] = r.makespan;
    o["demand_fetches"] = r.demand_fetches;
    o["backfill_yields"] = r.backfill_yields;
    legs.push_back(Json(std::move(o)));
  };
  leg_json("full", full);
  leg_json("warm", warm);
  leg_json("lazy", lazy);
  doc["legs"] = std::move(legs);
  doc["ready_ratio_full_over_lazy"] = ratio;
  doc["ready_ratio_cold_mean"] = cold_mean_ratio;
  doc["ready_ok"] = ready_ok;
  doc["identity_ok"] = identity_ok;
  doc["wire_ok"] = wire_ok;
  doc["preempt_ok"] = preempt_ok;
  bench::write_json("BENCH_lazy.json", doc);

  if (!ready_ok || !identity_ok || !wire_ok || !preempt_ok) {
    std::printf("\nFAILED: lazy-deploy bars not met\n");
    return 1;
  }
  std::printf("\nall lazy-deploy bars met\n");
  return 0;
}
