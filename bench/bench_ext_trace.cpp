// Extension bench: trace-driven node under serverless/CI-CD load.
//
// The paper's motivation (§I): cold-start latency is dominated by image
// downloading, and CI/CD churns versions constantly. This bench replays a
// deterministic Poisson deployment trace (Zipf-popular series, versions
// advancing on release cadences, bounded live containers) against Docker
// and Gear on the same 100 Mbps node and reports the latency distribution.
#include <set>

#include "bench_common.hpp"
#include "docker/client.hpp"
#include "workload/trace.hpp"

using namespace gear;

int main() {
  bench::Env e = bench::env();
  bench::print_title("Extension: trace-driven deployments (serverless/CI-CD)",
                     e);

  std::vector<workload::SeriesSpec> specs =
      workload::small_corpus(2, 20);
  workload::TraceSpec tspec;
  tspec.duration_seconds = e.fast ? 1200 : 3600;
  tspec.mean_interarrival_seconds = 6.0;
  tspec.release_cadence_seconds = 240;
  tspec.max_live_containers = 24;
  tspec.seed = e.seed;
  std::vector<workload::TraceEvent> events =
      workload::generate_trace(specs, tspec);
  std::printf("trace: %zu deployments over %s across %zu series\n\n",
              events.size(), format_duration(tspec.duration_seconds).c_str(),
              specs.size());

  // Ingest every (series, version) the trace touches.
  workload::CorpusGenerator gen(e.seed, e.scale);
  docker::DockerRegistry classic;
  docker::DockerRegistry index_registry;
  GearRegistry file_registry;
  GearConverter converter;
  std::set<std::pair<std::size_t, int>> pushed;
  for (const auto& ev : events) {
    if (!pushed.insert({ev.series_index, ev.version}).second) continue;
    docker::Image image =
        gen.generate_image(specs[ev.series_index], ev.version);
    classic.push_image(image);
    push_gear_image(converter.convert(image).image, index_registry,
                    file_registry);
  }
  std::printf("distinct image versions in trace: %zu\n\n", pushed.size());

  auto access_of = [&](std::size_t series, int version) {
    return gen.access_set(specs[series], version);
  };

  std::vector<int> w = {10, 12, 12, 12, 12, 14, 12};
  bench::print_row({"system", "mean", "p50", "p90", "p99", "bytes moved",
                    "makespan"},
                   w);
  bench::print_rule(w);

  // Docker replay.
  {
    sim::SimClock clock;
    sim::NetworkLink link = sim::scaled_link(clock, 100.0, e.scale);
    sim::DiskModel disk = sim::DiskModel::scaled_hdd(clock, e.scale);
    docker::DockerClient client(classic, link, disk);
    int counter = 0;
    workload::TraceResult r = workload::replay_trace(
        clock, events, tspec,
        [&](std::size_t series, int version) {
          std::string ref =
              specs[series].name + ":v" + std::to_string(version);
          client.deploy(ref, access_of(series, version));
          // Docker has no per-container handle in this client; synthesize
          // one and charge the teardown at destroy time.
          return ref + "#" + std::to_string(counter++);
        },
        [&](const std::string& container) {
          std::string ref = container.substr(0, container.find('#'));
          client.destroy(ref);
        });
    const Histogram& h = r.deploy_latency;
    bench::print_row({"docker", format_duration(h.mean()),
                      format_duration(h.percentile(50)),
                      format_duration(h.percentile(90)),
                      format_duration(h.percentile(99)),
                      format_size(link.stats().bytes_transferred),
                      format_duration(r.makespan_seconds)},
                     w);
  }

  // Gear replay.
  {
    sim::SimClock clock;
    sim::NetworkLink link = sim::scaled_link(clock, 100.0, e.scale);
    sim::DiskModel disk = sim::DiskModel::scaled_hdd(clock, e.scale);
    GearClient client(index_registry, file_registry, link, disk);
    workload::TraceResult r = workload::replay_trace(
        clock, events, tspec,
        [&](std::size_t series, int version) {
          std::string ref =
              specs[series].name + ":v" + std::to_string(version);
          std::string container;
          client.deploy(ref, access_of(series, version), &container);
          return container;
        },
        [&](const std::string& container) { client.destroy(container); });
    const Histogram& h = r.deploy_latency;
    bench::print_row({"gear", format_duration(h.mean()),
                      format_duration(h.percentile(50)),
                      format_duration(h.percentile(90)),
                      format_duration(h.percentile(99)),
                      format_size(link.stats().bytes_transferred),
                      format_duration(r.makespan_seconds)},
                     w);
    const CacheStats& cs = client.store().cache().stats();
    std::printf("\ngear cache over the trace: %.1f%% hit rate, %zu entries, "
                "%s\n",
                100.0 * static_cast<double>(cs.hits) /
                    static_cast<double>(cs.hits + cs.misses),
                client.store().cache().entry_count(),
                format_size(client.store().cache().size_bytes()).c_str());
  }

  std::printf("expected shape: Gear's tail (p99, fresh releases) and median "
              "(warm repeats) both beat Docker; bytes moved shrink several-"
              "fold\n");
  return 0;
}
