// Extension bench: multi-site edge deploy storm over hierarchical P2P.
//
// Scenario (EdgePier, PAPERS.md): a fleet of edge sites sits behind slow
// WAN links; one new image version lands in the registry and every node of
// every site warms it at nearly the same time. Without cooperation each
// node pulls a full copy over the WAN (nodes_per_site x sites copies).
// With the two-tier topology — site-local peers first, cross-site WAN
// peers second, registry last — each cold site's WAN traffic approaches
// ONE compressed image copy (the site seed's pull), everything else rides
// the site LANs, and registry egress collapses to ~one copy total.
//
// Method: replay the same jittered deploy storm across {1,2,4,8} sites x
// {eager,lazy} deploy modes on identical 50 Mbps WAN / 1 Gbps LAN links,
// plus a no-P2P baseline (independent nodes) for the per-site cost without
// cooperation. Deployed trees are compared byte-for-byte against a
// single-registry solo deploy, and a churn probe crashes holders
// mid-storm to prove fetches degrade to the next holder (or the registry)
// and rejoin re-announces.
//
// Exit-code bars (also recorded in BENCH_edge.json):
//   1. WAN optimality: max content WAN bytes per cold site <= 1.2x one
//      compressed image copy at 4 and 8 sites, in both deploy modes
//      (baseline sits at ~nodes_per_site x one copy);
//   2. registry egress: content bytes served by the registry across the
//      whole storm <= 1.2x one copy at 4 and 8 sites (cross-site peers
//      shield it);
//   3. byte identity: every deployed tree in every leg is byte-identical
//      to the single-registry solo deploy;
//   4. churn: a holder crash mid-storm degrades to the next holder (zero
//      registry content), a fully-crashed advert set falls through to the
//      registry, and a rejoined node serves again after re-announce.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "p2p/topology.hpp"
#include "workload/trace.hpp"

using namespace gear;

namespace {

struct LegResult {
  std::size_t sites = 0;
  bool lazy = false;
  std::vector<std::uint64_t> wan_per_site;          // raw WAN bytes
  std::vector<std::uint64_t> content_wan_per_site;  // minus index/manifest
  std::uint64_t lan_bytes = 0;
  std::uint64_t registry_content_bytes = 0;  // WAN minus peer + pull shares
  std::uint64_t lan_hits = 0;
  std::uint64_t wan_hits = 0;
  double deploys_per_s = 0;
  double ready_p99 = 0;
  bool identity_ok = true;
};

/// path -> content of every regular file in a fully materialized index;
/// *all_regular false if any stub is left.
std::map<std::string, Bytes> materialized_tree(GearClient& client,
                                               const std::string& reference,
                                               bool* all_regular) {
  std::map<std::string, Bytes> out;
  client.store().index_tree(reference).walk(
      [&](const std::string& path, const vfs::FileNode& node) {
        if (node.is_fingerprint()) *all_regular = false;
        if (node.is_regular()) out[path] = node.content();
      });
  return out;
}

std::uint64_t max_of(const std::vector<std::uint64_t>& xs) {
  std::uint64_t m = 0;
  for (std::uint64_t x : xs) m = std::max(m, x);
  return m;
}

LegResult run_leg(std::size_t sites, std::size_t nodes_per_site, bool lazy,
                  docker::DockerRegistry& index_registry,
                  GearRegistry& file_registry, const std::string& reference,
                  const workload::AccessSet& access, const bench::Env& e,
                  const std::map<std::string, Bytes>& reference_tree) {
  p2p::Topology::Params tp;
  tp.sites = sites;
  tp.nodes_per_site = nodes_per_site;
  tp.wan_link = sim::wan_profile(50.0);
  tp.lan_link = sim::lan_profile(1000.0);
  tp.byte_scale = e.scale;
  p2p::Topology topo(index_registry, file_registry, tp);

  std::vector<workload::StormEvent> storm = workload::generate_deploy_storm(
      sites, nodes_per_site, /*mean_jitter_seconds=*/2.0, e.seed);

  LegResult out;
  out.sites = sites;
  out.lazy = lazy;
  std::vector<std::uint64_t> pull_per_site(sites, 0);
  std::vector<double> ready;
  for (const workload::StormEvent& ev : storm) {
    sim::SimClock& clock = topo.node_clock(ev.site, ev.node);
    if (clock.now() < ev.arrival_seconds) {
      clock.advance(ev.arrival_seconds - clock.now());
    }
    docker::DeployStats stats;
    if (lazy) {
      stats = topo.deploy(ev.site, ev.node, reference, access, nullptr,
                          DeployMode::kLazy);
      topo.backfill(ev.site, ev.node, reference);
    } else {
      stats = topo.deploy(ev.site, ev.node, reference, access);
      topo.prefetch(ev.site, ev.node, reference);
    }
    pull_per_site[ev.site] += stats.pull.bytes_downloaded;
    ready.push_back(stats.ready_seconds);
  }

  std::uint64_t total_pulls = 0;
  for (std::size_t s = 0; s < sites; ++s) {
    std::uint64_t wan = topo.wan_bytes(s);
    out.wan_per_site.push_back(wan);
    out.content_wan_per_site.push_back(wan - pull_per_site[s]);
    total_pulls += pull_per_site[s];
  }
  out.lan_bytes = topo.lan_bytes();
  out.registry_content_bytes =
      topo.wan_bytes() - topo.wan_peer_bytes() - total_pulls;
  out.lan_hits = topo.lan_peer_hits();
  out.wan_hits = topo.wan_peer_hits();

  // Per-node clocks read like a parallel wave: the storm is done when the
  // slowest node is done.
  double makespan = 0;
  for (std::size_t s = 0; s < sites; ++s) {
    for (std::size_t n = 0; n < nodes_per_site; ++n) {
      makespan = std::max(makespan, topo.node_clock(s, n).now());
    }
  }
  out.deploys_per_s =
      makespan > 0 ? static_cast<double>(storm.size()) / makespan : 0;
  out.ready_p99 = bench::percentile(ready, 99);

  // Byte identity: every node's fully warmed tree vs the solo deploy.
  for (std::size_t s = 0; s < sites && out.identity_ok; ++s) {
    for (std::size_t n = 0; n < nodes_per_site; ++n) {
      bool complete = true;
      std::map<std::string, Bytes> tree =
          materialized_tree(topo.node(s, n), reference, &complete);
      if (!complete || tree != reference_tree) {
        out.identity_ok = false;
        break;
      }
    }
  }
  return out;
}

/// Crash/rejoin probe on a 2-site topology. Returns true when every churn
/// transition lands where the design says it must.
bool churn_probe(docker::DockerRegistry& index_registry,
                 GearRegistry& file_registry, const std::string& reference,
                 const workload::AccessSet& access, const bench::Env& e) {
  p2p::Topology::Params tp;
  tp.sites = 2;
  tp.nodes_per_site = 4;
  tp.wan_link = sim::wan_profile(50.0);
  tp.lan_link = sim::lan_profile(1000.0);
  tp.byte_scale = e.scale;
  p2p::Topology topo(index_registry, file_registry, tp);

  auto content_delta = [&](std::size_t site, std::size_t node) {
    std::uint64_t wan_before = topo.wan_bytes();
    docker::DeployStats stats = topo.deploy(site, node, reference, access);
    topo.prefetch(site, node, reference);
    return topo.wan_bytes() - wan_before - stats.pull.bytes_downloaded;
  };

  // Seed the first site from the registry, then a peer-served neighbor.
  std::uint64_t seed_content = content_delta(0, 0);
  std::uint64_t neighbor_content = content_delta(0, 1);
  bool peer_served = seed_content > 0 && neighbor_content == 0;

  // Crash the seed mid-storm: its adverts stay, stale; the next deployer
  // must degrade to the next holder (node 1) with zero registry content.
  topo.crash_node(0, 0);
  std::uint64_t after_crash = content_delta(0, 2);
  bool next_holder_ok = after_crash == 0;

  // Crash every holder: site 1 now chases stale adverts at both tiers and
  // must fall through to the registry — and still deploy correctly.
  topo.crash_node(0, 1);
  topo.crash_node(0, 2);
  std::uint64_t stale_fallback = content_delta(1, 0);
  bool registry_fallback_ok = stale_fallback > 0;

  // Rejoin re-announces: the revived seed serves its site again.
  topo.rejoin_node(0, 0);
  std::uint64_t after_rejoin = content_delta(0, 3);
  bool rejoin_ok = after_rejoin == 0;

  std::printf("churn probe: seed %s, neighbor %s, post-crash next-holder %s, "
              "stale->registry %s, post-rejoin %s\n",
              format_size(seed_content).c_str(),
              format_size(neighbor_content).c_str(),
              format_size(after_crash).c_str(),
              format_size(stale_fallback).c_str(),
              format_size(after_rejoin).c_str());
  return peer_served && next_holder_ok && registry_fallback_ok && rejoin_ok;
}

}  // namespace

int main() {
  bench::Env e = bench::env();
  bench::print_title("Extension: multi-site edge deploy storm (EdgePier-style)",
                     e);

  workload::CorpusGenerator gen(e.seed, e.scale);
  workload::SeriesSpec spec;
  for (const auto& s : workload::table1_corpus()) {
    if (s.name == "node") spec = s;  // the biggest web image
  }
  docker::DockerRegistry index_registry;
  GearRegistry file_registry;
  docker::Image image = gen.generate_image(spec, 0);
  push_gear_image(GearConverter().convert(image).image, index_registry,
                  file_registry);
  const std::string reference = "node:v0";
  workload::AccessSet access = gen.access_set(spec, 0);

  const std::size_t nodes_per_site = e.fast ? 3 : 4;
  const std::vector<std::size_t> site_counts = {1, 2, 4, 8};

  // Single-registry solo deploy: the identity reference and the "one
  // compressed image copy" yardstick (content = WAN minus the index pull).
  sim::SimClock solo_clock;
  sim::NetworkLink solo_link =
      sim::scaled_link(solo_clock, sim::wan_profile(50.0), e.scale);
  sim::DiskModel solo_disk = sim::DiskModel::scaled_ssd(solo_clock, e.scale);
  GearClient solo(index_registry, file_registry, solo_link, solo_disk);
  docker::DeployStats solo_stats = solo.deploy(reference, access);
  solo.prefetch_remaining(reference);
  const std::uint64_t one_copy = solo_link.stats().bytes_transferred -
                                 solo_stats.pull.bytes_downloaded;
  bool reference_complete = true;
  std::map<std::string, Bytes> reference_tree =
      materialized_tree(solo, reference, &reference_complete);
  if (!reference_complete) {
    std::printf("FAILED: solo reference tree left stubs\n");
    return 1;
  }

  // No-P2P baseline: every node of one site pulls independently.
  std::uint64_t baseline_site_content = 0;
  for (std::size_t n = 0; n < nodes_per_site; ++n) {
    sim::SimClock c;
    sim::NetworkLink l = sim::scaled_link(c, sim::wan_profile(50.0), e.scale);
    sim::DiskModel d = sim::DiskModel::scaled_ssd(c, e.scale);
    GearClient client(index_registry, file_registry, l, d);
    docker::DeployStats stats = client.deploy(reference, access);
    client.prefetch_remaining(reference);
    baseline_site_content +=
        l.stats().bytes_transferred - stats.pull.bytes_downloaded;
  }
  std::printf("one compressed copy: %s; no-P2P baseline per site (%zu "
              "nodes): %s (%.1fx)\n\n",
              format_size(one_copy).c_str(), nodes_per_site,
              format_size(baseline_site_content).c_str(),
              one_copy > 0 ? static_cast<double>(baseline_site_content) /
                                 static_cast<double>(one_copy)
                           : 0);

  std::vector<LegResult> legs;
  for (std::size_t sites : site_counts) {
    for (bool lazy : {false, true}) {
      legs.push_back(run_leg(sites, nodes_per_site, lazy, index_registry,
                             file_registry, reference, access, e,
                             reference_tree));
    }
  }

  std::vector<int> w = {6, 6, 14, 14, 12, 12, 11, 11};
  bench::print_row({"sites", "mode", "wan/site(max)", "content/site",
                    "registry", "lan", "deploys/s", "p99 ready"},
                   w);
  bench::print_rule(w);
  for (const LegResult& leg : legs) {
    char rate[32];
    std::snprintf(rate, sizeof(rate), "%.2f", leg.deploys_per_s);
    bench::print_row(
        {std::to_string(leg.sites), leg.lazy ? "lazy" : "eager",
         format_size(max_of(leg.wan_per_site)),
         format_size(max_of(leg.content_wan_per_site)),
         format_size(leg.registry_content_bytes), format_size(leg.lan_bytes),
         rate, format_duration(leg.ready_p99)},
        w);
  }

  // Bars 1 + 2 at 4 and 8 sites, both modes.
  bool wan_ok = true;
  bool registry_ok = true;
  bool identity_ok = true;
  const double kSlack = 1.2;
  for (const LegResult& leg : legs) {
    if (!leg.identity_ok) identity_ok = false;
    if (leg.sites < 4) continue;
    double per_site = static_cast<double>(max_of(leg.content_wan_per_site));
    if (per_site > kSlack * static_cast<double>(one_copy)) {
      std::printf("BAR FAILED: %zu sites %s: max content WAN per site %s > "
                  "1.2x one copy %s\n",
                  leg.sites, leg.lazy ? "lazy" : "eager",
                  format_size(max_of(leg.content_wan_per_site)).c_str(),
                  format_size(one_copy).c_str());
      wan_ok = false;
    }
    if (static_cast<double>(leg.registry_content_bytes) >
        kSlack * static_cast<double>(one_copy)) {
      std::printf("BAR FAILED: %zu sites %s: registry content egress %s > "
                  "1.2x one copy\n",
                  leg.sites, leg.lazy ? "lazy" : "eager",
                  format_size(leg.registry_content_bytes).c_str());
      registry_ok = false;
    }
  }
  std::printf("\nwan per cold site <= 1.2x one copy at 4/8 sites: %s\n",
              wan_ok ? "ok" : "BAR FAILED");
  std::printf("registry egress <= 1.2x one copy at 4/8 sites: %s\n",
              registry_ok ? "ok" : "BAR FAILED");
  std::printf("byte identity to single-registry deploys: %s\n",
              identity_ok ? "ok" : "MISMATCH");

  bool churn_ok =
      churn_probe(index_registry, file_registry, reference, access, e);
  std::printf("churn-mid-storm recovery: %s\n",
              churn_ok ? "ok" : "BAR FAILED");

  Json doc;
  doc["bench"] = "ext_edge";
  doc["scale"] = e.scale;
  doc["seed"] = e.seed;
  doc["nodes_per_site"] = static_cast<std::int64_t>(nodes_per_site);
  doc["one_copy_content_bytes"] = one_copy;
  doc["baseline_site_content_bytes"] = baseline_site_content;
  JsonArray leg_docs;
  for (const LegResult& leg : legs) {
    JsonObject o;
    o["sites"] = static_cast<std::int64_t>(leg.sites);
    o["mode"] = leg.lazy ? "lazy" : "eager";
    JsonArray wan, content;
    for (std::uint64_t b : leg.wan_per_site) wan.push_back(Json(b));
    for (std::uint64_t b : leg.content_wan_per_site) {
      content.push_back(Json(b));
    }
    o["wan_bytes_per_site"] = std::move(wan);
    o["content_wan_bytes_per_site"] = std::move(content);
    o["lan_bytes"] = leg.lan_bytes;
    o["registry_content_bytes"] = leg.registry_content_bytes;
    o["lan_peer_hits"] = leg.lan_hits;
    o["wan_peer_hits"] = leg.wan_hits;
    o["deploys_per_s"] = leg.deploys_per_s;
    o["ready_p99_s"] = leg.ready_p99;
    o["identity_ok"] = leg.identity_ok;
    leg_docs.push_back(Json(std::move(o)));
  }
  doc["legs"] = std::move(leg_docs);
  doc["wan_ok"] = wan_ok;
  doc["registry_ok"] = registry_ok;
  doc["identity_ok"] = identity_ok;
  doc["churn_ok"] = churn_ok;
  bench::write_json("BENCH_edge.json", doc);

  if (!wan_ok || !registry_ok || !identity_ok || !churn_ok) {
    std::printf("\nFAILED: edge-topology bars not met\n");
    return 1;
  }
  std::printf("\nall edge-topology bars met\n");
  return 0;
}
