// Extension bench: registry fleet scale-out under a deploy storm.
//
// Scenario: hundreds of clients cold-deploy simultaneously against the Gear
// file registry. One registry process is the throughput ceiling (the
// registry_concurrency leg of BENCH_fig8 shows aggregate throughput sagging
// with just 4 real clients); FleetRegistry shards the object space over N
// backend instances behind the same FileRegistryApi, so the storm's demand
// splits ~1/N per instance.
//
// Method (single-core friendly, fully deterministic):
//  1. For each fleet config (shards x replicas), ingest the corpus and
//     capture each image's REAL per-shard wire demand — frames and bytes,
//     measured from LoopbackServerStats deltas around an actual cold deploy
//     through the fleet.
//  2. Replay a C-client storm through a discrete queueing model: every
//     client opens at t=0 (FIFO in client order), each shard is one server,
//     serving a client's sub-batches costs overhead*frames + bytes/bw, and
//     a client finishes when its slowest shard finishes. Client latency
//     percentiles and aggregate throughput (C / makespan) fall out.
//  3. Byte-identity: every object downloaded through every fleet config
//     must equal the single-registry copy.
//  4. Rebalance: joining a shard mid-life must move only the ring-delta
//     and re-upload NOTHING to the surviving shards.
// Failing 3, 4, the 4-shard >= 2x throughput bar, or "p99 never worse than
// 1 shard" flips the exit code.
#include <cstdio>
#include <memory>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "gear/converter.hpp"
#include "gear/fleet.hpp"
#include "net/remote_registry.hpp"
#include "net/transport.hpp"

using namespace gear;

namespace {

/// One backend registry instance served over the wire protocol.
struct ShardInstance {
  std::unique_ptr<GearRegistry> registry;
  std::unique_ptr<net::LoopbackTransport> transport;
  std::unique_ptr<net::RemoteGearRegistry> stub;

  ShardInstance()
      : registry(std::make_unique<GearRegistry>()),
        transport(std::make_unique<net::LoopbackTransport>(*registry)),
        stub(std::make_unique<net::RemoteGearRegistry>(
            *transport, 3, /*verify_content=*/false)) {}
};

/// Wire demand one deploy places on one shard.
struct ShardDemand {
  std::uint64_t frames = 0;
  std::uint64_t bytes = 0;
};

std::vector<ShardDemand> snapshot(const std::vector<ShardInstance>& shards) {
  std::vector<ShardDemand> out(shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const net::LoopbackServerStats& s = shards[i].transport->server_stats();
    out[i].frames = s.round_trips;
    out[i].bytes = s.bytes_in + s.bytes_out;
  }
  return out;
}

std::vector<ShardDemand> delta(const std::vector<ShardDemand>& before,
                               const std::vector<ShardDemand>& after) {
  std::vector<ShardDemand> out(after.size());
  for (std::size_t i = 0; i < after.size(); ++i) {
    out[i].frames = after[i].frames - before[i].frames;
    out[i].bytes = after[i].bytes - before[i].bytes;
  }
  return out;
}

struct ConfigResult {
  std::size_t shards = 0;
  std::size_t replicas = 0;
  std::uint64_t ingest_uploads = 0;  // sum of backend uploads_accepted
  double throughput_per_s = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  bool identical = false;
};

}  // namespace

int main() {
  bench::Env e = bench::env();
  bench::print_title("Extension: registry fleet under a deploy storm", e);

  // Queue-model constants (paper-equivalent units: measured bytes are
  // un-scaled by e.scale before charging the 1 Gbps shard uplink).
  constexpr double kFrameOverheadMs = 0.25;
  constexpr double kShardBytesPerSec = 125.0e6;  // 1 Gbps
  const int kClients = e.fast ? 32 : 256;
  std::vector<std::size_t> shard_counts =
      e.fast ? std::vector<std::size_t>{1, 4}
             : std::vector<std::size_t>{1, 2, 4, 8};
  const std::size_t replica_counts[] = {1, 2};

  workload::CorpusGenerator gen(e.seed, e.scale);
  std::vector<workload::SeriesSpec> all = bench::corpus(e);

  // Convert once; ingest into the single-registry baseline.
  GearConverter converter;
  docker::DockerRegistry index_single;
  GearRegistry single;
  std::vector<GearImage> images;
  std::vector<std::string> refs;
  std::vector<workload::AccessSet> accesses;
  for (const auto& spec : all) {
    docker::Image image = gen.generate_image(spec, 0);
    images.push_back(converter.convert(image).image);
    refs.push_back(spec.name + ":v0");
    accesses.push_back(gen.access_set(spec, 0));
    push_gear_image(images.back(), index_single, single);
  }
  std::vector<Fingerprint> all_objects = single.list_objects();

  auto service_ms = [&](const ShardDemand& d) {
    return static_cast<double>(d.frames) * kFrameOverheadMs +
           (static_cast<double>(d.bytes) / e.scale) / kShardBytesPerSec *
               1000.0;
  };

  std::vector<ConfigResult> results;
  for (std::size_t replicas : replica_counts) {
    for (std::size_t n_shards : shard_counts) {
      ConfigResult r;
      r.shards = n_shards;
      r.replicas = replicas;

      std::vector<ShardInstance> shards(n_shards);
      std::vector<FileRegistryApi*> backends;
      for (ShardInstance& s : shards) backends.push_back(s.stub.get());
      FleetRegistry::Options opts;
      opts.replicas = replicas;
      opts.workers = 1;  // single-core host: keep the fan-out inline
      FleetRegistry fleet(backends, opts);

      docker::DockerRegistry index_cfg;
      for (const GearImage& img : images) {
        push_gear_image(img, index_cfg, fleet);
      }
      for (const ShardInstance& s : shards) {
        r.ingest_uploads += s.registry->stats().uploads_accepted;
      }

      // Byte-identity against the single registry, whole object space.
      r.identical = true;
      for (std::size_t at = 0; at < all_objects.size(); at += 64) {
        std::vector<Fingerprint> group(
            all_objects.begin() + static_cast<std::ptrdiff_t>(at),
            all_objects.begin() +
                static_cast<std::ptrdiff_t>(
                    std::min(at + 64, all_objects.size())));
        auto from_fleet = fleet.download_batch(group);
        auto from_single = single.download_batch(group);
        r.identical = r.identical && from_fleet.ok() && from_single.ok() &&
                      from_fleet.value() == from_single.value();
      }

      // Real per-shard wire demand of one cold deploy of each image.
      std::vector<std::vector<ShardDemand>> demand;
      for (std::size_t i = 0; i < images.size(); ++i) {
        std::vector<ShardDemand> before = snapshot(shards);
        sim::SimClock clk;
        sim::NetworkLink link = sim::scaled_link(clk, 904.0, e.scale);
        sim::DiskModel disk = sim::DiskModel::scaled_ssd(clk, e.scale);
        GearClient client(index_cfg, fleet, link, disk);
        client.deploy(refs[i], accesses[i]);
        demand.push_back(delta(before, snapshot(shards)));
      }

      // The storm: client c deploys image c % images, all arriving at t=0.
      // Each shard is a FIFO server; a client completes when its slowest
      // shard sub-stream completes.
      std::vector<double> shard_free(n_shards, 0.0);
      std::vector<double> latency_ms;
      latency_ms.reserve(static_cast<std::size_t>(kClients));
      for (int c = 0; c < kClients; ++c) {
        const std::vector<ShardDemand>& d =
            demand[static_cast<std::size_t>(c) % demand.size()];
        double done = 0.0;
        for (std::size_t j = 0; j < n_shards; ++j) {
          if (d[j].frames == 0 && d[j].bytes == 0) continue;
          shard_free[j] += service_ms(d[j]);
          done = std::max(done, shard_free[j]);
        }
        latency_ms.push_back(done);
      }
      double makespan_ms = 0.0;
      for (double l : latency_ms) makespan_ms = std::max(makespan_ms, l);
      r.throughput_per_s =
          makespan_ms > 0 ? kClients / (makespan_ms / 1000.0) : 0.0;
      r.p50_ms = bench::percentile(latency_ms, 50.0);
      r.p99_ms = bench::percentile(latency_ms, 99.0);
      results.push_back(r);
    }
  }

  std::vector<int> w = {8, 10, 16, 16, 12, 12, 11};
  bench::print_row({"shards", "replicas", "ingest uploads", "deploys/s",
                    "p50", "p99", "identical"},
                   w);
  bench::print_rule(w);
  char buf[64];
  for (const ConfigResult& r : results) {
    std::vector<std::string> cells;
    cells.push_back(std::to_string(r.shards));
    cells.push_back(std::to_string(r.replicas));
    cells.push_back(std::to_string(r.ingest_uploads));
    std::snprintf(buf, sizeof(buf), "%.1f", r.throughput_per_s);
    cells.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.1f ms", r.p50_ms);
    cells.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.1f ms", r.p99_ms);
    cells.push_back(buf);
    cells.push_back(r.identical ? "yes" : "NO");
    bench::print_row(cells, w);
  }

  // Rebalance leg: join a fourth shard into a live 3-shard fleet. The
  // surviving shards must accept ZERO uploads (nothing resident moves) and
  // the joiner must receive exactly the ring-delta.
  std::vector<ShardInstance> reb_shards(4);
  {
    std::vector<FileRegistryApi*> initial = {reb_shards[0].stub.get(),
                                             reb_shards[1].stub.get(),
                                             reb_shards[2].stub.get()};
    FleetRegistry::Options opts;
    opts.workers = 1;
    FleetRegistry fleet(initial, opts);
    docker::DockerRegistry index_reb;
    for (const GearImage& img : images) push_gear_image(img, index_reb, fleet);
    std::uint64_t old_uploads = 0;
    for (std::size_t i = 0; i < 3; ++i) {
      old_uploads += reb_shards[i].registry->stats().uploads_accepted;
    }
    RebalanceReport report;
    fleet.add_shard(reb_shards[3].stub.get(), &report);
    std::uint64_t old_uploads_after = 0;
    for (std::size_t i = 0; i < 3; ++i) {
      old_uploads_after += reb_shards[i].registry->stats().uploads_accepted;
    }
    std::uint64_t reuploaded = old_uploads_after - old_uploads;
    bool join_reads_ok = true;
    for (std::size_t at = 0; at < all_objects.size(); at += 64) {
      std::vector<Fingerprint> group(
          all_objects.begin() + static_cast<std::ptrdiff_t>(at),
          all_objects.begin() + static_cast<std::ptrdiff_t>(
                                    std::min(at + 64, all_objects.size())));
      auto got = fleet.download_batch(group);
      join_reads_ok = join_reads_ok && got.ok() &&
                      got.value() == single.download_batch(group).value();
    }
    bool rebalance_ok =
        reuploaded == 0 && report.moved_objects > 0 &&
        report.moved_objects + report.unmoved_objects == report.examined &&
        join_reads_ok;
    std::printf("\nrebalance (3 -> 4 shards): %zu/%zu objects moved "
                "(ring-delta), %llu re-uploaded to survivors, reads "
                "byte-identical after join: %s\n",
                report.moved_objects, report.examined,
                static_cast<unsigned long long>(reuploaded),
                join_reads_ok ? "yes" : "NO");

    // Scaling bars, folded with byte-identity into the exit code.
    bool identity_ok = true;
    for (const ConfigResult& r : results) {
      identity_ok = identity_ok && r.identical;
    }
    bool throughput_ok = true;
    bool p99_ok = true;
    for (std::size_t replicas : replica_counts) {
      const ConfigResult* base = nullptr;
      for (const ConfigResult& r : results) {
        if (r.replicas == replicas && r.shards == 1) base = &r;
      }
      for (const ConfigResult& r : results) {
        if (r.replicas != replicas) continue;
        if (r.shards == 4) {
          throughput_ok = throughput_ok &&
                          r.throughput_per_s >= 2.0 * base->throughput_per_s;
        }
        p99_ok = p99_ok && r.p99_ms <= base->p99_ms * 1.000001;
      }
    }
    std::printf("\nbars: byte-identical %s, 4-shard throughput >= 2x "
                "1-shard %s, p99 never worse than 1 shard %s, rebalance "
                "delta-only %s\n",
                identity_ok ? "yes" : "NO", throughput_ok ? "yes" : "NO",
                p99_ok ? "yes" : "NO", rebalance_ok ? "yes" : "NO");
    std::printf("expected shape: deploys/s grows ~linearly with shards; "
                "replication doubles ingest uploads but leaves read-side "
                "latency untouched\n");

    Json doc;
    doc["bench"] = "ext_fleet";
    doc["scale"] = e.scale;
    doc["seed"] = e.seed;
    doc["clients"] = static_cast<std::int64_t>(kClients);
    doc["objects"] = static_cast<std::int64_t>(all_objects.size());
    doc["frame_overhead_ms"] = kFrameOverheadMs;
    doc["shard_gbps"] = kShardBytesPerSec * 8.0 / 1.0e9;
    JsonArray rows;
    for (const ConfigResult& r : results) {
      Json row;
      row["shards"] = static_cast<std::int64_t>(r.shards);
      row["replicas"] = static_cast<std::int64_t>(r.replicas);
      row["ingest_uploads"] = static_cast<std::int64_t>(r.ingest_uploads);
      row["throughput_deploys_per_s"] = r.throughput_per_s;
      row["p50_ms"] = r.p50_ms;
      row["p99_ms"] = r.p99_ms;
      row["identical"] = r.identical;
      rows.push_back(std::move(row));
    }
    doc["configs"] = std::move(rows);
    Json reb;
    reb["examined"] = static_cast<std::int64_t>(report.examined);
    reb["moved_objects"] = static_cast<std::int64_t>(report.moved_objects);
    reb["moved_bytes"] = static_cast<std::int64_t>(report.moved_bytes);
    reb["survivor_reuploads"] = static_cast<std::int64_t>(reuploaded);
    reb["reads_identical_after_join"] = join_reads_ok;
    doc["rebalance"] = std::move(reb);
    doc["identity_ok"] = identity_ok;
    doc["throughput_ok"] = throughput_ok;
    doc["p99_ok"] = p99_ok;
    doc["rebalance_ok"] = rebalance_ok;
    bench::write_json("BENCH_fleet.json", doc);
    return (identity_ok && throughput_ok && p99_ok && rebalance_ok) ? 0 : 1;
  }
}
