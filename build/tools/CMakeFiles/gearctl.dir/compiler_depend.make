# Empty compiler generated dependencies file for gearctl.
# This may be replaced when dependencies are built.
