file(REMOVE_RECURSE
  "CMakeFiles/gearctl.dir/gearctl.cpp.o"
  "CMakeFiles/gearctl.dir/gearctl.cpp.o.d"
  "gearctl"
  "gearctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gearctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
