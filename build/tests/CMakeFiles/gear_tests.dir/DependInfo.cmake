
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_cache.cpp" "tests/CMakeFiles/gear_tests.dir/test_cache.cpp.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_cache.cpp.o.d"
  "/root/repo/tests/test_chunking.cpp" "tests/CMakeFiles/gear_tests.dir/test_chunking.cpp.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_chunking.cpp.o.d"
  "/root/repo/tests/test_compress.cpp" "tests/CMakeFiles/gear_tests.dir/test_compress.cpp.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_compress.cpp.o.d"
  "/root/repo/tests/test_conversion_service.cpp" "tests/CMakeFiles/gear_tests.dir/test_conversion_service.cpp.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_conversion_service.cpp.o.d"
  "/root/repo/tests/test_converter.cpp" "tests/CMakeFiles/gear_tests.dir/test_converter.cpp.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_converter.cpp.o.d"
  "/root/repo/tests/test_coverage_extra.cpp" "tests/CMakeFiles/gear_tests.dir/test_coverage_extra.cpp.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_coverage_extra.cpp.o.d"
  "/root/repo/tests/test_dedup.cpp" "tests/CMakeFiles/gear_tests.dir/test_dedup.cpp.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_dedup.cpp.o.d"
  "/root/repo/tests/test_docker.cpp" "tests/CMakeFiles/gear_tests.dir/test_docker.cpp.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_docker.cpp.o.d"
  "/root/repo/tests/test_fs_store.cpp" "tests/CMakeFiles/gear_tests.dir/test_fs_store.cpp.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_fs_store.cpp.o.d"
  "/root/repo/tests/test_fuzz_robustness.cpp" "tests/CMakeFiles/gear_tests.dir/test_fuzz_robustness.cpp.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_fuzz_robustness.cpp.o.d"
  "/root/repo/tests/test_gc.cpp" "tests/CMakeFiles/gear_tests.dir/test_gc.cpp.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_gc.cpp.o.d"
  "/root/repo/tests/test_gear_client.cpp" "tests/CMakeFiles/gear_tests.dir/test_gear_client.cpp.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_gear_client.cpp.o.d"
  "/root/repo/tests/test_gear_index.cpp" "tests/CMakeFiles/gear_tests.dir/test_gear_index.cpp.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_gear_index.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/gear_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_json.cpp" "tests/CMakeFiles/gear_tests.dir/test_json.cpp.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_json.cpp.o.d"
  "/root/repo/tests/test_local_runtime.cpp" "tests/CMakeFiles/gear_tests.dir/test_local_runtime.cpp.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_local_runtime.cpp.o.d"
  "/root/repo/tests/test_net.cpp" "tests/CMakeFiles/gear_tests.dir/test_net.cpp.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_net.cpp.o.d"
  "/root/repo/tests/test_overlay.cpp" "tests/CMakeFiles/gear_tests.dir/test_overlay.cpp.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_overlay.cpp.o.d"
  "/root/repo/tests/test_p2p.cpp" "tests/CMakeFiles/gear_tests.dir/test_p2p.cpp.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_p2p.cpp.o.d"
  "/root/repo/tests/test_persistence.cpp" "tests/CMakeFiles/gear_tests.dir/test_persistence.cpp.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_persistence.cpp.o.d"
  "/root/repo/tests/test_property_e2e.cpp" "tests/CMakeFiles/gear_tests.dir/test_property_e2e.cpp.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_property_e2e.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/gear_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_slacker.cpp" "tests/CMakeFiles/gear_tests.dir/test_slacker.cpp.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_slacker.cpp.o.d"
  "/root/repo/tests/test_store_viewer.cpp" "tests/CMakeFiles/gear_tests.dir/test_store_viewer.cpp.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_store_viewer.cpp.o.d"
  "/root/repo/tests/test_tar.cpp" "tests/CMakeFiles/gear_tests.dir/test_tar.cpp.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_tar.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/gear_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/gear_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_util.cpp.o.d"
  "/root/repo/tests/test_vfs.cpp" "tests/CMakeFiles/gear_tests.dir/test_vfs.cpp.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_vfs.cpp.o.d"
  "/root/repo/tests/test_workload.cpp" "tests/CMakeFiles/gear_tests.dir/test_workload.cpp.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gear_lib.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
