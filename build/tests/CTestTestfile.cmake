# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/gear_tests[1]_include.cmake")
add_test(gearctl_smoke "/root/repo/tests/gearctl_smoke.sh" "/root/repo/build/tools/gearctl")
set_tests_properties(gearctl_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;38;add_test;/root/repo/tests/CMakeLists.txt;0;")
