# Empty dependencies file for ai_model_serving.
# This may be replaced when dependencies are built.
