file(REMOVE_RECURSE
  "CMakeFiles/ai_model_serving.dir/ai_model_serving.cpp.o"
  "CMakeFiles/ai_model_serving.dir/ai_model_serving.cpp.o.d"
  "ai_model_serving"
  "ai_model_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ai_model_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
