# Empty dependencies file for collision_audit.
# This may be replaced when dependencies are built.
