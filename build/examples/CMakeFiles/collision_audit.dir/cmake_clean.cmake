file(REMOVE_RECURSE
  "CMakeFiles/collision_audit.dir/collision_audit.cpp.o"
  "CMakeFiles/collision_audit.dir/collision_audit.cpp.o.d"
  "collision_audit"
  "collision_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collision_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
