file(REMOVE_RECURSE
  "CMakeFiles/registry_dedupe.dir/registry_dedupe.cpp.o"
  "CMakeFiles/registry_dedupe.dir/registry_dedupe.cpp.o.d"
  "registry_dedupe"
  "registry_dedupe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/registry_dedupe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
