# Empty dependencies file for registry_dedupe.
# This may be replaced when dependencies are built.
