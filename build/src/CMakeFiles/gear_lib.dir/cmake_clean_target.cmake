file(REMOVE_RECURSE
  "libgear_lib.a"
)
