
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/codec.cpp" "src/CMakeFiles/gear_lib.dir/compress/codec.cpp.o" "gcc" "src/CMakeFiles/gear_lib.dir/compress/codec.cpp.o.d"
  "/root/repo/src/compress/lzss.cpp" "src/CMakeFiles/gear_lib.dir/compress/lzss.cpp.o" "gcc" "src/CMakeFiles/gear_lib.dir/compress/lzss.cpp.o.d"
  "/root/repo/src/dedup/analyzer.cpp" "src/CMakeFiles/gear_lib.dir/dedup/analyzer.cpp.o" "gcc" "src/CMakeFiles/gear_lib.dir/dedup/analyzer.cpp.o.d"
  "/root/repo/src/docker/client.cpp" "src/CMakeFiles/gear_lib.dir/docker/client.cpp.o" "gcc" "src/CMakeFiles/gear_lib.dir/docker/client.cpp.o.d"
  "/root/repo/src/docker/image.cpp" "src/CMakeFiles/gear_lib.dir/docker/image.cpp.o" "gcc" "src/CMakeFiles/gear_lib.dir/docker/image.cpp.o.d"
  "/root/repo/src/docker/layer.cpp" "src/CMakeFiles/gear_lib.dir/docker/layer.cpp.o" "gcc" "src/CMakeFiles/gear_lib.dir/docker/layer.cpp.o.d"
  "/root/repo/src/docker/manifest.cpp" "src/CMakeFiles/gear_lib.dir/docker/manifest.cpp.o" "gcc" "src/CMakeFiles/gear_lib.dir/docker/manifest.cpp.o.d"
  "/root/repo/src/docker/overlay.cpp" "src/CMakeFiles/gear_lib.dir/docker/overlay.cpp.o" "gcc" "src/CMakeFiles/gear_lib.dir/docker/overlay.cpp.o.d"
  "/root/repo/src/docker/registry.cpp" "src/CMakeFiles/gear_lib.dir/docker/registry.cpp.o" "gcc" "src/CMakeFiles/gear_lib.dir/docker/registry.cpp.o.d"
  "/root/repo/src/gear/cache.cpp" "src/CMakeFiles/gear_lib.dir/gear/cache.cpp.o" "gcc" "src/CMakeFiles/gear_lib.dir/gear/cache.cpp.o.d"
  "/root/repo/src/gear/chunking.cpp" "src/CMakeFiles/gear_lib.dir/gear/chunking.cpp.o" "gcc" "src/CMakeFiles/gear_lib.dir/gear/chunking.cpp.o.d"
  "/root/repo/src/gear/client.cpp" "src/CMakeFiles/gear_lib.dir/gear/client.cpp.o" "gcc" "src/CMakeFiles/gear_lib.dir/gear/client.cpp.o.d"
  "/root/repo/src/gear/committer.cpp" "src/CMakeFiles/gear_lib.dir/gear/committer.cpp.o" "gcc" "src/CMakeFiles/gear_lib.dir/gear/committer.cpp.o.d"
  "/root/repo/src/gear/conversion_service.cpp" "src/CMakeFiles/gear_lib.dir/gear/conversion_service.cpp.o" "gcc" "src/CMakeFiles/gear_lib.dir/gear/conversion_service.cpp.o.d"
  "/root/repo/src/gear/converter.cpp" "src/CMakeFiles/gear_lib.dir/gear/converter.cpp.o" "gcc" "src/CMakeFiles/gear_lib.dir/gear/converter.cpp.o.d"
  "/root/repo/src/gear/fs_store.cpp" "src/CMakeFiles/gear_lib.dir/gear/fs_store.cpp.o" "gcc" "src/CMakeFiles/gear_lib.dir/gear/fs_store.cpp.o.d"
  "/root/repo/src/gear/gc.cpp" "src/CMakeFiles/gear_lib.dir/gear/gc.cpp.o" "gcc" "src/CMakeFiles/gear_lib.dir/gear/gc.cpp.o.d"
  "/root/repo/src/gear/index.cpp" "src/CMakeFiles/gear_lib.dir/gear/index.cpp.o" "gcc" "src/CMakeFiles/gear_lib.dir/gear/index.cpp.o.d"
  "/root/repo/src/gear/local_runtime.cpp" "src/CMakeFiles/gear_lib.dir/gear/local_runtime.cpp.o" "gcc" "src/CMakeFiles/gear_lib.dir/gear/local_runtime.cpp.o.d"
  "/root/repo/src/gear/persistence.cpp" "src/CMakeFiles/gear_lib.dir/gear/persistence.cpp.o" "gcc" "src/CMakeFiles/gear_lib.dir/gear/persistence.cpp.o.d"
  "/root/repo/src/gear/registry.cpp" "src/CMakeFiles/gear_lib.dir/gear/registry.cpp.o" "gcc" "src/CMakeFiles/gear_lib.dir/gear/registry.cpp.o.d"
  "/root/repo/src/gear/store.cpp" "src/CMakeFiles/gear_lib.dir/gear/store.cpp.o" "gcc" "src/CMakeFiles/gear_lib.dir/gear/store.cpp.o.d"
  "/root/repo/src/gear/viewer.cpp" "src/CMakeFiles/gear_lib.dir/gear/viewer.cpp.o" "gcc" "src/CMakeFiles/gear_lib.dir/gear/viewer.cpp.o.d"
  "/root/repo/src/net/remote_registry.cpp" "src/CMakeFiles/gear_lib.dir/net/remote_registry.cpp.o" "gcc" "src/CMakeFiles/gear_lib.dir/net/remote_registry.cpp.o.d"
  "/root/repo/src/net/transport.cpp" "src/CMakeFiles/gear_lib.dir/net/transport.cpp.o" "gcc" "src/CMakeFiles/gear_lib.dir/net/transport.cpp.o.d"
  "/root/repo/src/net/wire.cpp" "src/CMakeFiles/gear_lib.dir/net/wire.cpp.o" "gcc" "src/CMakeFiles/gear_lib.dir/net/wire.cpp.o.d"
  "/root/repo/src/p2p/cluster.cpp" "src/CMakeFiles/gear_lib.dir/p2p/cluster.cpp.o" "gcc" "src/CMakeFiles/gear_lib.dir/p2p/cluster.cpp.o.d"
  "/root/repo/src/sim/clock.cpp" "src/CMakeFiles/gear_lib.dir/sim/clock.cpp.o" "gcc" "src/CMakeFiles/gear_lib.dir/sim/clock.cpp.o.d"
  "/root/repo/src/sim/disk.cpp" "src/CMakeFiles/gear_lib.dir/sim/disk.cpp.o" "gcc" "src/CMakeFiles/gear_lib.dir/sim/disk.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/CMakeFiles/gear_lib.dir/sim/network.cpp.o" "gcc" "src/CMakeFiles/gear_lib.dir/sim/network.cpp.o.d"
  "/root/repo/src/slacker/block_device.cpp" "src/CMakeFiles/gear_lib.dir/slacker/block_device.cpp.o" "gcc" "src/CMakeFiles/gear_lib.dir/slacker/block_device.cpp.o.d"
  "/root/repo/src/slacker/slacker.cpp" "src/CMakeFiles/gear_lib.dir/slacker/slacker.cpp.o" "gcc" "src/CMakeFiles/gear_lib.dir/slacker/slacker.cpp.o.d"
  "/root/repo/src/tar/tar.cpp" "src/CMakeFiles/gear_lib.dir/tar/tar.cpp.o" "gcc" "src/CMakeFiles/gear_lib.dir/tar/tar.cpp.o.d"
  "/root/repo/src/util/crc32.cpp" "src/CMakeFiles/gear_lib.dir/util/crc32.cpp.o" "gcc" "src/CMakeFiles/gear_lib.dir/util/crc32.cpp.o.d"
  "/root/repo/src/util/file_io.cpp" "src/CMakeFiles/gear_lib.dir/util/file_io.cpp.o" "gcc" "src/CMakeFiles/gear_lib.dir/util/file_io.cpp.o.d"
  "/root/repo/src/util/fingerprint.cpp" "src/CMakeFiles/gear_lib.dir/util/fingerprint.cpp.o" "gcc" "src/CMakeFiles/gear_lib.dir/util/fingerprint.cpp.o.d"
  "/root/repo/src/util/format.cpp" "src/CMakeFiles/gear_lib.dir/util/format.cpp.o" "gcc" "src/CMakeFiles/gear_lib.dir/util/format.cpp.o.d"
  "/root/repo/src/util/hex.cpp" "src/CMakeFiles/gear_lib.dir/util/hex.cpp.o" "gcc" "src/CMakeFiles/gear_lib.dir/util/hex.cpp.o.d"
  "/root/repo/src/util/histogram.cpp" "src/CMakeFiles/gear_lib.dir/util/histogram.cpp.o" "gcc" "src/CMakeFiles/gear_lib.dir/util/histogram.cpp.o.d"
  "/root/repo/src/util/json.cpp" "src/CMakeFiles/gear_lib.dir/util/json.cpp.o" "gcc" "src/CMakeFiles/gear_lib.dir/util/json.cpp.o.d"
  "/root/repo/src/util/md5.cpp" "src/CMakeFiles/gear_lib.dir/util/md5.cpp.o" "gcc" "src/CMakeFiles/gear_lib.dir/util/md5.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/gear_lib.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/gear_lib.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/sha256.cpp" "src/CMakeFiles/gear_lib.dir/util/sha256.cpp.o" "gcc" "src/CMakeFiles/gear_lib.dir/util/sha256.cpp.o.d"
  "/root/repo/src/vfs/file_tree.cpp" "src/CMakeFiles/gear_lib.dir/vfs/file_tree.cpp.o" "gcc" "src/CMakeFiles/gear_lib.dir/vfs/file_tree.cpp.o.d"
  "/root/repo/src/vfs/fs_io.cpp" "src/CMakeFiles/gear_lib.dir/vfs/fs_io.cpp.o" "gcc" "src/CMakeFiles/gear_lib.dir/vfs/fs_io.cpp.o.d"
  "/root/repo/src/vfs/tree_diff.cpp" "src/CMakeFiles/gear_lib.dir/vfs/tree_diff.cpp.o" "gcc" "src/CMakeFiles/gear_lib.dir/vfs/tree_diff.cpp.o.d"
  "/root/repo/src/vfs/tree_serialize.cpp" "src/CMakeFiles/gear_lib.dir/vfs/tree_serialize.cpp.o" "gcc" "src/CMakeFiles/gear_lib.dir/vfs/tree_serialize.cpp.o.d"
  "/root/repo/src/workload/access.cpp" "src/CMakeFiles/gear_lib.dir/workload/access.cpp.o" "gcc" "src/CMakeFiles/gear_lib.dir/workload/access.cpp.o.d"
  "/root/repo/src/workload/generator.cpp" "src/CMakeFiles/gear_lib.dir/workload/generator.cpp.o" "gcc" "src/CMakeFiles/gear_lib.dir/workload/generator.cpp.o.d"
  "/root/repo/src/workload/service.cpp" "src/CMakeFiles/gear_lib.dir/workload/service.cpp.o" "gcc" "src/CMakeFiles/gear_lib.dir/workload/service.cpp.o.d"
  "/root/repo/src/workload/spec.cpp" "src/CMakeFiles/gear_lib.dir/workload/spec.cpp.o" "gcc" "src/CMakeFiles/gear_lib.dir/workload/spec.cpp.o.d"
  "/root/repo/src/workload/trace.cpp" "src/CMakeFiles/gear_lib.dir/workload/trace.cpp.o" "gcc" "src/CMakeFiles/gear_lib.dir/workload/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
