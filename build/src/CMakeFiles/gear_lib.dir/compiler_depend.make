# Empty compiler generated dependencies file for gear_lib.
# This may be replaced when dependencies are built.
