# Empty dependencies file for bench_table2_dedup.
# This may be replaced when dependencies are built.
