# Empty dependencies file for bench_fig2_redundancy.
# This may be replaced when dependencies are built.
