file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_redundancy.dir/bench_fig2_redundancy.cpp.o"
  "CMakeFiles/bench_fig2_redundancy.dir/bench_fig2_redundancy.cpp.o.d"
  "bench_fig2_redundancy"
  "bench_fig2_redundancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_redundancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
