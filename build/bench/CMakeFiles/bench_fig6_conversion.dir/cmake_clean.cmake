file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_conversion.dir/bench_fig6_conversion.cpp.o"
  "CMakeFiles/bench_fig6_conversion.dir/bench_fig6_conversion.cpp.o.d"
  "bench_fig6_conversion"
  "bench_fig6_conversion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_conversion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
