# Empty compiler generated dependencies file for bench_ext_chunking.
# This may be replaced when dependencies are built.
