# Empty dependencies file for bench_fig11_shortrun.
# This may be replaced when dependencies are built.
