file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_shortrun.dir/bench_fig11_shortrun.cpp.o"
  "CMakeFiles/bench_fig11_shortrun.dir/bench_fig11_shortrun.cpp.o.d"
  "bench_fig11_shortrun"
  "bench_fig11_shortrun.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_shortrun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
