file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_deploytime.dir/bench_fig9_deploytime.cpp.o"
  "CMakeFiles/bench_fig9_deploytime.dir/bench_fig9_deploytime.cpp.o.d"
  "bench_fig9_deploytime"
  "bench_fig9_deploytime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_deploytime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
