# Empty dependencies file for bench_fig11_longrun.
# This may be replaced when dependencies are built.
