file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_longrun.dir/bench_fig11_longrun.cpp.o"
  "CMakeFiles/bench_fig11_longrun.dir/bench_fig11_longrun.cpp.o.d"
  "bench_fig11_longrun"
  "bench_fig11_longrun.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_longrun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
