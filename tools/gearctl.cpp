// gearctl — command-line front end for the Gear pipeline on real
// directories and on-disk registries.
//
//   gearctl <store-dir> init
//   gearctl <store-dir> import <directory> <name:tag> [chunk-threshold-bytes]
//   gearctl <store-dir> images
//   gearctl <store-dir> inspect <name:tag>
//   gearctl <store-dir> cat <name:tag> <path> [offset length]
//   gearctl <store-dir> export <name:tag> <directory>
//   gearctl <store-dir> rm <name:tag>
//   gearctl <store-dir> gc
//   gearctl <store-dir> stats
//   gearctl serve --addr HOST:PORT --store-dir DIR [--shards N --replicas R]
//
// The store directory persists both registries (gear/persistence.hpp
// layout). `import` turns a real directory into a Gear image; `export`
// reconstructs an image's root filesystem back onto disk.
//
// `serve` runs the gear-file registry as a TCP daemon over the wire
// protocol; client invocations in other processes reach it with
// --remote HOST:PORT (the Docker half — manifests, index layers — stays a
// local snapshot under the client's store dir).
#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "docker/layer.hpp"
#include "gear/converter.hpp"
#include "gear/client.hpp"
#include "gear/fleet.hpp"
#include "gear/gc.hpp"
#include "gear/local_runtime.hpp"
#include "gear/fs_store.hpp"
#include "gear/object_store.hpp"
#include "gear/persistence.hpp"
#include "net/remote_registry.hpp"
#include "net/tcp.hpp"
#include "p2p/topology.hpp"
#include "util/format.hpp"
#include "vfs/fs_io.hpp"
#include "workload/generator.hpp"
#include "workload/trace.hpp"

namespace fs = std::filesystem;
using namespace gear;

namespace {

/// Worker budget for import's fingerprinting/compression (--workers N;
/// 0 = one thread per hardware core).
util::Concurrency g_concurrency;

/// --range-batch N: chunk indices per download_chunks batch in ranged cat.
/// 1 = the serial per-chunk protocol (output is identical either way).
std::size_t g_range_batch = 64;

/// --prefetch-order {path,delta,profile}: queue discipline of the prefetch
/// command (gear/prefetch.hpp). Delta-first is the paper's redeploy case.
PrefetchOrder g_prefetch_order = PrefetchOrder::kDelta;

/// --store-dir PATH: keep the Gear files on a durable DiskObjectStore at
/// PATH instead of in memory. The disk store IS the live registry state —
/// it needs no save/load snapshot and survives process restarts — so only
/// the Docker half (manifests, index layers) is snapshotted under the
/// store root. Empty = historical in-memory mode.
fs::path g_object_store_dir;

/// --shards N / --replicas R: run the gear-file side as a FleetRegistry of
/// N disk-backed instances (consistent-hash routed, R-way replicated) under
/// <store-dir-path>/shard-<i>. Requires --store-dir; placement is stable
/// across invocations because the ring depends only on shard ids.
std::size_t g_shards = 1;
std::size_t g_replicas = 1;

/// --lazy: start-before-warm launch — report the container id the moment
/// the index is installed, then backfill the remaining files behind it.
/// Only valid with the launch command.
bool g_lazy = false;

/// --host-budget-bytes N: process-wide admission budget (gear/admission).
/// Every download this invocation stages — prefetch batches on the
/// background lane, demand-fault materializations on the strict-priority
/// lane — acquires its bytes here first. 0 = ungoverned.
std::uint64_t g_host_budget_bytes = 0;
std::unique_ptr<HostBudget> g_host_budget;

/// --cache-capacity-bytes N / --eviction {fifo,lru}: disk envelope of the
/// local runtime's shared file cache. Inserts that would exceed it evict
/// unlinked (st_nlink == 1) entries in policy order first. 0 = unbounded.
std::uint64_t g_cache_capacity_bytes = 0;
EvictionPolicy g_eviction = EvictionPolicy::kLru;

/// --remote HOST:PORT: dial a `gearctl serve` daemon for the gear files
/// instead of opening a local store. Empty = local mode.
net::HostPort g_remote;
bool g_remote_set = false;

/// --addr HOST:PORT: the endpoint `serve` binds. Only valid with serve.
net::HostPort g_addr;
bool g_addr_set = false;

/// cluster-sim knobs: replay an in-process multi-site edge deploy storm
/// over the hierarchical P2P topology (p2p/topology.hpp) and report the
/// WAN/LAN split. Only valid with the cluster-sim command.
std::size_t g_sites = 2;
bool g_sites_set = false;
std::size_t g_nodes_per_site = 3;
bool g_nodes_per_site_set = false;
double g_wan_mbps = 50.0;
bool g_wan_mbps_set = false;
double g_lan_mbps = 1000.0;
bool g_lan_mbps_set = false;
/// --mode eager|lazy: eager deploys warm the access set up front; lazy
/// starts before warm and backfills behind the container.
bool g_sim_lazy = false;
bool g_mode_set = false;
/// --churn: crash the first site's seed node mid-storm (stale adverts left
/// behind) and rejoin it before the last wave.
bool g_churn = false;

/// Set by SIGTERM/SIGINT while `serve` runs; the main loop notices and
/// shuts the daemon down cleanly (exit 0).
volatile std::sig_atomic_t g_serve_stop = 0;

void handle_serve_signal(int) { g_serve_stop = 1; }

std::unique_ptr<ObjectStore> make_file_backend() {
  if (g_object_store_dir.empty()) return nullptr;  // in-memory default
  return std::make_unique<DiskObjectStore>(g_object_store_dir);
}

struct Store {
  fs::path root;
  docker::DockerRegistry docker;
  // Backend registries: one in single-registry mode, g_shards disk-backed
  // instances in fleet mode (--shards > 1).
  std::vector<std::unique_ptr<GearRegistry>> shards;
  std::unique_ptr<FleetRegistry> fleet;  // set only in fleet mode
  // Remote mode (--remote): the gear files live behind a `gearctl serve`
  // daemon; the stub frames every call through one TCP connection.
  std::unique_ptr<net::TcpTransport> remote_transport;
  std::unique_ptr<net::RemoteGearRegistry> remote;

  explicit Store(fs::path r, bool must_exist) : root(std::move(r)) {
    if (g_remote_set) {
      remote_transport =
          std::make_unique<net::TcpTransport>(g_remote.host, g_remote.port);
      // The daemon may hold collision-salted unique ids whose names
      // intentionally differ from their content hash, so skip the client's
      // re-hash check (the frame CRC still covers transit integrity).
      remote = std::make_unique<net::RemoteGearRegistry>(
          *remote_transport, /*max_attempts=*/4, /*verify_content=*/false);
      if (fs::is_directory(root / "docker")) {
        load_docker_registry(root, &docker);
      } else if (must_exist) {
        throw Error(ErrorCode::kNotFound,
                    "no gear store at " + root.string() + " (run init first)");
      }
      return;
    }
    if (g_shards > 1) {
      std::vector<FileRegistryApi*> backends;
      for (std::size_t i = 0; i < g_shards; ++i) {
        shards.push_back(std::make_unique<GearRegistry>(
            std::make_unique<DiskObjectStore>(
                g_object_store_dir / ("shard-" + std::to_string(i)))));
        backends.push_back(shards.back().get());
      }
      FleetRegistry::Options opts;
      opts.replicas = g_replicas;
      fleet = std::make_unique<FleetRegistry>(std::move(backends), opts);
    } else {
      shards.push_back(std::make_unique<GearRegistry>(make_file_backend()));
    }
    const bool disk_backed = !g_object_store_dir.empty();
    if (fs::is_directory(root / "docker")) {
      if (disk_backed) {
        load_docker_registry(root, &docker);
      } else {
        load_registries(root, &docker, shards[0].get());
      }
    } else if (must_exist) {
      throw Error(ErrorCode::kNotFound,
                  "no gear store at " + root.string() + " (run init first)");
    }
  }

  /// The registry the data path talks to: the remote stub with --remote,
  /// the fleet router with --shards > 1, the lone backend otherwise.
  FileRegistryApi& files() {
    if (remote) return *remote;
    return fleet ? static_cast<FileRegistryApi&>(*fleet) : *shards[0];
  }

  /// The single backend registry, or null in fleet/remote mode. Commands
  /// that need registry internals (gc, scrub) only work against a local
  /// single instance.
  GearRegistry* single() {
    return (fleet || remote) ? nullptr : shards[0].get();
  }

  void save() {
    if (remote) {
      save_docker_registry(docker, root);
    } else if (g_object_store_dir.empty()) {
      save_registries(docker, *shards[0], root);
    } else {
      save_docker_registry(docker, root);
    }
  }
};

/// The single backend, or a "unsupported with --shards/--remote" error.
GearRegistry* require_single(Store& store, const char* cmd) {
  GearRegistry* single = store.single();
  if (single == nullptr) {
    std::fprintf(stderr,
                 "gearctl: %s is unsupported with --shards > 1 or --remote\n",
                 cmd);
  }
  return single;
}

GearIndex load_index_of(Store& store, const std::string& ref) {
  docker::Manifest manifest = store.docker.get_manifest(ref).value();
  if (manifest.config.labels.count(kGearIndexLabel) == 0 ||
      manifest.layers.size() != 1) {
    throw Error(ErrorCode::kInvalidArgument, ref + " is not a Gear image");
  }
  docker::Layer layer = docker::Layer::from_blob(
      store.docker.get_blob(manifest.layers[0].digest).value(),
      manifest.layers[0].digest);
  return GearIndex::from_wire_tree(layer.to_tree());
}

Bytes fetch_file(Store& store, const Fingerprint& fp) {
  return store.files().download(fp).value();
}

int cmd_init(Store& store) {
  store.save();
  std::printf("initialized gear store at %s\n", store.root.string().c_str());
  return 0;
}

int cmd_import(Store& store, const std::string& dir, const std::string& ref,
               std::uint64_t chunk_threshold) {
  std::size_t colon = ref.find(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == ref.size()) {
    std::fprintf(stderr, "reference must be name:tag\n");
    return 2;
  }

  vfs::FileTree root = vfs::load_tree(dir);
  vfs::TreeStats stats = root.stats();
  std::printf("imported %s: %llu files, %llu dirs, %llu symlinks, %s\n",
              dir.c_str(),
              static_cast<unsigned long long>(stats.regular_files),
              static_cast<unsigned long long>(stats.directories),
              static_cast<unsigned long long>(stats.symlinks),
              format_size(stats.total_file_bytes).c_str());

  docker::ImageBuilder builder;
  builder.add_snapshot(root);
  docker::ImageConfig config;
  config.labels["gearctl.import.source"] = dir;
  docker::Image image = builder.build(ref.substr(0, colon),
                                      ref.substr(colon + 1), config);

  // Convert with collision detection against what the store already holds.
  GearConverter converter(default_hasher(),
                          [&store](const Fingerprint& fp) {
                            StatusOr<Bytes> got = store.files().download(fp);
                            return got.ok()
                                       ? std::optional<Bytes>(std::move(got).value())
                                       : std::nullopt;
                          });
  converter.set_concurrency(g_concurrency);
  ConversionResult conv = converter.convert(image);
  ChunkPolicy policy;
  if (chunk_threshold > 0) {
    policy.threshold_bytes = chunk_threshold;
  }
  std::unique_ptr<util::ThreadPool> pool;
  if (g_concurrency.resolved_workers() > 1) {
    pool = std::make_unique<util::ThreadPool>(g_concurrency.resolved_workers());
  }
  std::size_t uploaded =
      push_gear_image(conv.image, store.docker, store.files(), policy,
                      pool.get(), g_concurrency.max_inflight_bytes);
  store.save();

  std::printf("converted: %zu unique gear files (%zu uploaded, rest "
              "deduplicated), index layer %s\n",
              conv.stats.files_unique, uploaded,
              format_size(conv.stats.index_wire_bytes).c_str());
  if (conv.stats.collisions > 0) {
    std::printf("note: %zu fingerprint collisions detected and uniquified\n",
                conv.stats.collisions);
  }
  std::printf("pushed %s\n", ref.c_str());
  return 0;
}

int cmd_images(Store& store) {
  for (const std::string& ref : store.docker.list_manifests()) {
    docker::Manifest m = store.docker.get_manifest(ref).value();
    bool is_gear = m.config.labels.count(kGearIndexLabel) != 0;
    std::printf("%-32s %8s  %s\n", ref.c_str(),
                format_size(m.total_layer_bytes()).c_str(),
                is_gear ? "gear" : "classic");
  }
  return 0;
}

int cmd_inspect(Store& store, const std::string& ref) {
  GearIndex index = load_index_of(store, ref);
  vfs::TreeStats stats = index.tree().stats();
  std::printf("%s\n", ref.c_str());
  std::printf("  files:       %llu (%zu distinct fingerprints)\n",
              static_cast<unsigned long long>(stats.fingerprint_stubs),
              index.distinct_fingerprints().size());
  std::printf("  directories: %llu, symlinks: %llu\n",
              static_cast<unsigned long long>(stats.directories),
              static_cast<unsigned long long>(stats.symlinks));
  std::printf("  logical size: %s\n",
              format_size(index.referenced_bytes()).c_str());
  std::size_t chunked = 0;
  for (const Fingerprint& fp : index.distinct_fingerprints()) {
    chunked += store.files().is_chunked(fp) ? 1 : 0;
  }
  std::printf("  chunked files: %zu\n", chunked);
  return 0;
}

int cmd_cat(Store& store, const std::string& ref, const std::string& path) {
  GearIndex index = load_index_of(store, ref);
  const vfs::FileNode* node = index.tree().lookup(path);
  if (node == nullptr) {
    std::fprintf(stderr, "no such file: %s\n", path.c_str());
    return 1;
  }
  if (node->is_symlink()) {
    std::printf("%s -> %s\n", path.c_str(), node->link_target().c_str());
    return 0;
  }
  if (!node->is_fingerprint()) {
    std::fprintf(stderr, "not a regular file: %s\n", path.c_str());
    return 1;
  }
  Bytes content = fetch_file(store, node->fingerprint());
  std::fwrite(content.data(), 1, content.size(), stdout);
  return 0;
}

int cmd_cat_range(Store& store, const std::string& ref, const std::string& path,
                  std::uint64_t offset, std::uint64_t length) {
  GearIndex index = load_index_of(store, ref);
  const vfs::FileNode* node = index.tree().lookup(path);
  if (node == nullptr) {
    std::fprintf(stderr, "no such file: %s\n", path.c_str());
    return 1;
  }
  if (!node->is_fingerprint()) {
    std::fprintf(stderr, "not a regular file: %s\n", path.c_str());
    return 1;
  }
  Fingerprint fp = node->fingerprint();
  if (!store.files().is_chunked(fp)) {
    Bytes content = fetch_file(store, fp);
    if (offset + length > content.size()) {
      std::fprintf(stderr, "range out of bounds for %s\n", path.c_str());
      return 1;
    }
    std::fwrite(content.data() + offset, 1, length, stdout);
    return 0;
  }

  // Chunked: move only the covering chunks, --range-batch indices per
  // download_chunks call.
  StatusOr<ChunkManifest> manifest = store.files().chunk_manifest(fp);
  if (!manifest.ok()) {
    std::fprintf(stderr, "manifest of %s: %s\n", path.c_str(),
                 manifest.message().c_str());
    return 1;
  }
  if (offset + length > manifest->file_size) {
    std::fprintf(stderr, "range out of bounds for %s\n", path.c_str());
    return 1;
  }
  auto [first, last] = manifest->chunk_range(offset, length);
  std::vector<std::uint32_t> indices;
  for (std::size_t c = first; c <= last; ++c) {
    indices.push_back(static_cast<std::uint32_t>(c));
  }
  Bytes assembled;
  for (std::size_t b = 0; b < indices.size(); b += g_range_batch) {
    std::vector<std::uint32_t> batch(
        indices.begin() + static_cast<std::ptrdiff_t>(b),
        indices.begin() + static_cast<std::ptrdiff_t>(
                              std::min(b + g_range_batch, indices.size())));
    StatusOr<std::vector<Bytes>> chunks =
        store.files().download_chunks(fp, *manifest, batch);
    if (!chunks.ok()) {
      std::fprintf(stderr, "range read of %s: %s\n", path.c_str(),
                   chunks.message().c_str());
      return 1;
    }
    for (const Bytes& chunk : *chunks) append(assembled, chunk);
  }
  std::uint64_t skip =
      offset - static_cast<std::uint64_t>(first) * manifest->chunk_bytes;
  std::fwrite(assembled.data() + skip, 1, length, stdout);
  return 0;
}

int cmd_export(Store& store, const std::string& ref, const std::string& dir) {
  GearIndex index = load_index_of(store, ref);
  // Materialize: stubs -> contents.
  vfs::FileTree out;
  out.root().metadata() = index.tree().root().metadata();
  index.tree().walk([&](const std::string& path, const vfs::FileNode& node) {
    switch (node.type()) {
      case vfs::NodeType::kDirectory:
        out.add_directory(path, node.metadata());
        break;
      case vfs::NodeType::kSymlink:
        out.add_symlink(path, node.link_target(), node.metadata());
        break;
      case vfs::NodeType::kFingerprint:
        out.add_file(path, fetch_file(store, node.fingerprint()),
                     node.metadata());
        break;
      default:
        break;
    }
  });
  vfs::write_tree(out, dir);
  std::printf("exported %s to %s (%s)\n", ref.c_str(), dir.c_str(),
              format_size(out.stats().total_file_bytes).c_str());
  return 0;
}

int cmd_run(Store& store, const std::string& ref,
            const std::vector<std::string>& paths) {
  // Launch = the client-side deployment path on the real filesystem:
  // install the index (level 2), create a container (level 3), then
  // materialize each requested file — shared cache first, registry on a
  // miss — and hard-link it into the image's files/ directory.
  FsStore local(store.root / "local");
  GearIndex index = load_index_of(store, ref);
  if (!local.has_index(ref)) {
    local.install_index(ref, index);
  }
  std::string container = local.create_container(ref);
  std::printf("launched %s from %s\n", container.c_str(), ref.c_str());

  for (const std::string& path : paths) {
    const vfs::FileNode* node = index.tree().lookup(path);
    if (node == nullptr) {
      std::fprintf(stderr, "  %s: not in image\n", path.c_str());
      continue;
    }
    if (node->is_symlink()) {
      std::printf("  %s -> %s\n", path.c_str(), node->link_target().c_str());
      continue;
    }
    if (!node->is_fingerprint()) {
      std::printf("  %s: directory\n", path.c_str());
      continue;
    }
    Fingerprint fp = node->fingerprint();
    const char* source = "cache";
    if (!local.cache_contains(fp)) {
      local.cache_put(fp, store.files().download(fp).value());
      source = "registry";
    }
    local.link_file(ref, path, fp);
    Bytes content = local.read_materialized(ref, path).value();
    std::printf("  %s: %s (%s, nlink=%llu, %s)\n", path.c_str(),
                format_size(content.size()).c_str(), source,
                static_cast<unsigned long long>(local.link_count(fp)),
                fp.hex().substr(0, 12).c_str());
  }
  std::printf("local cache: %zu files, %s\n", local.cache_entries(),
              format_size(local.cache_bytes()).c_str());
  return 0;
}

/// Builds the container runtime with this invocation's governance applied:
/// --cache-capacity-bytes/--eviction bound the on-disk cache,
/// --host-budget-bytes meters every download through the shared admission
/// budget.
LocalRuntime make_runtime(Store& store) {
  LocalRuntime runtime(store.docker, store.files(), store.root / "local");
  if (g_cache_capacity_bytes != 0) {
    runtime.store().set_cache_capacity(g_cache_capacity_bytes, g_eviction);
  }
  if (g_host_budget) runtime.set_host_budget(g_host_budget.get());
  return runtime;
}

/// After a governed command: one stderr line of admission + cache-pressure
/// telemetry, so runs under --host-budget-bytes/--cache-capacity-bytes show
/// what the envelopes did.
void report_governance(const FsStore& fs) {
  if (g_host_budget) {
    HostBudgetStats s = g_host_budget->stats();
    std::fprintf(stderr,
                 "admission: budget %s, %llu admitted, %llu waits, "
                 "%llu demand preemptions, peak in-flight %s\n",
                 format_size(g_host_budget->budget_bytes()).c_str(),
                 static_cast<unsigned long long>(s.admitted),
                 static_cast<unsigned long long>(s.waits),
                 static_cast<unsigned long long>(s.demand_preemptions),
                 format_size(s.peak_inflight_bytes).c_str());
  }
  if (fs.cache_capacity() != 0) {
    const CacheStats& c = fs.session_stats();
    std::fprintf(stderr,
                 "cache pressure: capacity %s, used %s, %llu evictions, "
                 "%llu rejected\n",
                 format_size(fs.cache_capacity()).c_str(),
                 format_size(fs.cache_bytes()).c_str(),
                 static_cast<unsigned long long>(c.evictions),
                 static_cast<unsigned long long>(c.rejected));
  }
}

int cmd_launch(Store& store, const std::string& ref, bool lazy) {
  // The runtime talks to store.files(): the fleet router with --shards > 1,
  // the single backend otherwise — lazy fault-in works against both.
  LocalRuntime runtime = make_runtime(store);
  runtime.pull(ref);
  std::string container = runtime.launch(ref);
  store.save();  // the pull may have cached nothing, but keep state coherent
  std::printf("%s\n", container.c_str());
  if (lazy) {
    // Start-before-warm: the container id above is usable the moment the
    // index is local; the backfill below is the background half, warming
    // the remaining files in priority order after readiness is reported.
    std::fflush(stdout);
    auto [files, bytes] = runtime.prefetch(ref, g_prefetch_order);
    store.save();
    std::fprintf(stderr, "backfilled %s (%s order): %zu files, %s\n",
                 ref.c_str(), prefetch_order_name(g_prefetch_order), files,
                 format_size(bytes).c_str());
  }
  report_governance(runtime.store());
  return 0;
}

int cmd_exec_read(Store& store, const std::string& container,
                  const std::string& path) {
  LocalRuntime runtime = make_runtime(store);
  StatusOr<Bytes> content = runtime.read(container, path);
  if (!content.ok()) {
    std::fprintf(stderr, "read failed: %s\n", path.c_str());
    return 1;
  }
  std::fwrite(content->data(), 1, content->size(), stdout);
  return 0;
}

int cmd_exec_write(Store& store, const std::string& container,
                   const std::string& path, const std::string& text) {
  LocalRuntime runtime = make_runtime(store);
  runtime.write(container, path, to_bytes(text));
  std::printf("wrote %zu bytes to %s:%s\n", text.size(), container.c_str(),
              path.c_str());
  return 0;
}

int cmd_prefetch(Store& store, const std::string& ref) {
  LocalRuntime runtime = make_runtime(store);
  if (!runtime.has_image(ref)) runtime.pull(ref);
  auto [files, bytes] = runtime.prefetch(ref, g_prefetch_order);
  store.save();
  std::printf("prefetched %s (%s order): %zu files, %s\n", ref.c_str(),
              prefetch_order_name(g_prefetch_order), files,
              format_size(bytes).c_str());
  report_governance(runtime.store());
  return 0;
}

int cmd_commit(Store& store, const std::string& container,
               const std::string& ref) {
  std::size_t colon = ref.find(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "reference must be name:tag\n");
    return 2;
  }
  LocalRuntime runtime = make_runtime(store);
  std::string result = runtime.commit(container, ref.substr(0, colon),
                                      ref.substr(colon + 1));
  store.save();
  std::printf("committed %s as %s\n", container.c_str(), result.c_str());
  return 0;
}

int cmd_rm(Store& store, const std::string& ref) {
  if (!store.docker.delete_manifest(ref)) {
    std::fprintf(stderr, "no such image: %s\n", ref.c_str());
    return 1;
  }
  store.save();
  std::printf("removed %s (run gc to reclaim unreferenced files)\n",
              ref.c_str());
  return 0;
}

int cmd_gc(Store& store) {
  GearRegistry* single = require_single(store, "gc");
  if (single == nullptr) return 2;
  GearRegistryGc gc(store.docker, *single);
  GcReport report = gc.collect();
  store.save();
  std::printf("gc: scanned %zu indexes, %zu live objects, swept %zu "
              "(%s reclaimed)\n",
              report.indexes_scanned, report.live_objects,
              report.swept_objects,
              format_size(report.bytes_reclaimed).c_str());
  return 0;
}

int cmd_scrub(Store& store) {
  GearRegistry* single = require_single(store, "scrub");
  if (single == nullptr) return 2;
  ScrubReport report = scrub_registry(*single);
  std::printf("scrub: %zu objects checked, %zu verified, %zu unverifiable "
              "(salted ids), %zu corrupt\n",
              report.objects_checked, report.verified, report.unverifiable,
              report.corrupt);
  for (const Fingerprint& fp : report.corrupt_fingerprints) {
    std::printf("  CORRUPT: %s\n", fp.hex().c_str());
  }
  return report.corrupt == 0 ? 0 : 1;
}

/// stats under --remote: reachability, how many of the locally referenced
/// gear files the daemon holds, and this session's wire accounting.
int cmd_stats_remote(Store& store) {
  // Reachability probe: a query for the zero fingerprint. Any decoded
  // answer — even "not found" — proves a live daemon; exhausted retries
  // throw kInternal.
  try {
    (void)store.files().query(Fingerprint{});
  } catch (const Error& e) {
    std::fprintf(stderr, "gearctl: remote %s:%u unreachable (%s)\n",
                 g_remote.host.c_str(), static_cast<unsigned>(g_remote.port),
                 e.what());
    return 1;
  }
  std::printf("remote registry: %s:%u reachable\n", g_remote.host.c_str(),
              static_cast<unsigned>(g_remote.port));
  std::printf("docker snapshot: %zu manifests, %zu blobs, %s\n",
              store.docker.manifest_count(), store.docker.blob_count(),
              format_size(store.docker.storage_bytes()).c_str());

  // Every distinct fingerprint referenced by the local gear images, probed
  // in batched queries (one round trip per 256 fingerprints).
  std::unordered_set<Fingerprint, FingerprintHash> seen;
  std::vector<Fingerprint> referenced;
  for (const std::string& ref : store.docker.list_manifests()) {
    docker::Manifest m = store.docker.get_manifest(ref).value();
    if (m.config.labels.count(kGearIndexLabel) == 0) continue;
    GearIndex index = load_index_of(store, ref);
    for (const Fingerprint& fp : index.distinct_fingerprints()) {
      if (seen.insert(fp).second) referenced.push_back(fp);
    }
  }
  std::size_t present = 0;
  constexpr std::size_t kQueryBatch = 256;
  for (std::size_t b = 0; b < referenced.size(); b += kQueryBatch) {
    std::vector<Fingerprint> batch(
        referenced.begin() + static_cast<std::ptrdiff_t>(b),
        referenced.begin() + static_cast<std::ptrdiff_t>(
                                 std::min(b + kQueryBatch, referenced.size())));
    std::vector<std::uint8_t> hits = store.files().query_many(batch);
    for (std::uint8_t hit : hits) present += hit ? 1 : 0;
  }
  std::printf("referenced gear files on remote: %zu / %zu present\n", present,
              referenced.size());

  const net::RemoteRegistryStats& s = store.remote->stats();
  std::printf("session wire stats: %llu round trips, %llu retries, "
              "%llu item refetches, %llu integrity failures\n",
              static_cast<unsigned long long>(s.requests.load()),
              static_cast<unsigned long long>(s.retries.load()),
              static_cast<unsigned long long>(s.item_refetches.load()),
              static_cast<unsigned long long>(s.integrity_failures.load()));
  return 0;
}

int cmd_stats(Store& store) {
  if (store.remote) return cmd_stats_remote(store);
  std::printf("docker registry: %zu manifests, %zu blobs, %s\n",
              store.docker.manifest_count(), store.docker.blob_count(),
              format_size(store.docker.storage_bytes()).c_str());
  if (store.fleet) {
    std::size_t objects = 0;
    std::uint64_t bytes = 0;
    for (const auto& shard : store.shards) {
      objects += shard->object_count();
      bytes += shard->storage_bytes();
    }
    std::printf("gear registry:   fleet of %zu shards (replicas %zu), "
                "%zu stored objects, %s\n",
                store.shards.size(), store.fleet->replication(), objects,
                format_size(bytes).c_str());
    for (std::size_t i = 0; i < store.shards.size(); ++i) {
      std::printf("  shard %zu: %zu objects, %s\n", i,
                  store.shards[i]->object_count(),
                  format_size(store.shards[i]->storage_bytes()).c_str());
    }
  } else {
    std::printf("gear registry:   %zu objects, %s\n",
                store.single()->object_count(),
                format_size(store.single()->storage_bytes()).c_str());
  }

  // The local runtime's on-disk cache (level 1 of the three-level store)
  // under this invocation's governance flags, plus its session telemetry —
  // commands that ran in this process (launch/prefetch/read) land here.
  FsStore local(store.root / "local");
  const CacheStats& cache = local.session_stats();
  std::printf("local cache:     %zu files, %s used, capacity %s, "
              "eviction %s\n",
              local.cache_entries(), format_size(local.cache_bytes()).c_str(),
              g_cache_capacity_bytes == 0
                  ? "unbounded"
                  : format_size(g_cache_capacity_bytes).c_str(),
              g_eviction == EvictionPolicy::kFifo ? "fifo" : "lru");
  std::printf("  session: %llu hits, %llu misses, %llu insertions, "
              "%llu evictions, %llu rejected\n",
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.misses),
              static_cast<unsigned long long>(cache.insertions),
              static_cast<unsigned long long>(cache.evictions),
              static_cast<unsigned long long>(cache.rejected));
  if (g_host_budget) {
    HostBudgetStats s = g_host_budget->stats();
    std::printf("admission:       budget %s, %llu admitted, %llu waits, "
                "%llu demand preemptions, peak in-flight %s\n",
                format_size(g_host_budget->budget_bytes()).c_str(),
                static_cast<unsigned long long>(s.admitted),
                static_cast<unsigned long long>(s.waits),
                static_cast<unsigned long long>(s.demand_preemptions),
                format_size(s.peak_inflight_bytes).c_str());
  } else {
    std::printf("admission:       ungoverned (no --host-budget-bytes)\n");
  }
  return 0;
}

/// `gearctl serve`: run the gear-file registry as a TCP daemon. Mounts a
/// DiskObjectStore at --store-dir (or a --shards fleet of them) behind a
/// FrameServer and serves wire frames until SIGTERM/SIGINT. Prints
/// "serving on HOST:PORT" once bound — with --addr HOST:0 the kernel picks
/// the port and this line is how callers learn it.
int cmd_serve() {
  std::vector<std::unique_ptr<GearRegistry>> shards;
  std::unique_ptr<FleetRegistry> fleet;
  if (g_shards > 1) {
    std::vector<FileRegistryApi*> backends;
    for (std::size_t i = 0; i < g_shards; ++i) {
      shards.push_back(std::make_unique<GearRegistry>(
          std::make_unique<DiskObjectStore>(
              g_object_store_dir / ("shard-" + std::to_string(i)))));
      backends.push_back(shards.back().get());
    }
    FleetRegistry::Options opts;
    opts.replicas = g_replicas;
    fleet = std::make_unique<FleetRegistry>(std::move(backends), opts);
  } else {
    shards.push_back(std::make_unique<GearRegistry>(
        std::make_unique<DiskObjectStore>(g_object_store_dir)));
  }
  FileRegistryApi& files =
      fleet ? static_cast<FileRegistryApi&>(*fleet) : *shards[0];
  net::FrameServer frames(files);
  net::TcpServer server(frames);

  // Handlers go in before the socket opens: a supervisor that signals the
  // moment it reads "serving on" must never catch the default disposition.
  g_serve_stop = 0;
  std::signal(SIGTERM, handle_serve_signal);
  std::signal(SIGINT, handle_serve_signal);
  server.start(g_addr.host, g_addr.port);
  std::printf("serving on %s:%u\n", g_addr.host.c_str(),
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  while (g_serve_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.stop();
  std::fprintf(stderr,
               "gearctl serve: shut down (%llu connections, %llu frames "
               "served, %llu rejected)\n",
               static_cast<unsigned long long>(server.connections_accepted()),
               static_cast<unsigned long long>(server.frames_served()),
               static_cast<unsigned long long>(server.frames_rejected()));
  return 0;
}

// cluster-sim: replay a jittered multi-site deploy storm over the
// hierarchical P2P topology, entirely in process (synthetic corpus +
// simulated links — no store dir, no daemon). Reports the per-site WAN
// split, the LAN traffic that replaced it, and the peer-hit ladder; with
// --churn the first site's seed crashes mid-storm and rejoins before the
// last wave. Exit 1 if cooperation moved nothing (no peer hits on a
// multi-node topology).
int cmd_cluster_sim() {
  const std::uint64_t kSeed = 42;
  const double kScale = 0.05;  // shrink the corpus: a CLI run, not a bench
  workload::CorpusGenerator gen(kSeed, kScale);
  workload::SeriesSpec spec;
  for (const auto& s : workload::table1_corpus()) {
    if (s.name == "node") spec = s;
  }
  docker::DockerRegistry index_registry;
  GearRegistry file_registry;
  push_gear_image(GearConverter().convert(gen.generate_image(spec, 0)).image,
                  index_registry, file_registry);
  const std::string reference = "node:v0";
  workload::AccessSet access = gen.access_set(spec, 0);

  p2p::Topology::Params tp;
  tp.sites = g_sites;
  tp.nodes_per_site = g_nodes_per_site;
  tp.wan_link = sim::wan_profile(g_wan_mbps);
  tp.lan_link = sim::lan_profile(g_lan_mbps);
  tp.byte_scale = kScale;
  tp.prefetch_order = g_prefetch_order;
  p2p::Topology topo(index_registry, file_registry, tp);

  std::vector<workload::StormEvent> storm = workload::generate_deploy_storm(
      g_sites, g_nodes_per_site, /*mean_jitter_seconds=*/2.0, kSeed);
  std::printf("cluster-sim: %zu site%s x %zu nodes, wan %.0f Mbps, "
              "lan %.0f Mbps, %s deploys%s\n",
              g_sites, g_sites == 1 ? "" : "s", g_nodes_per_site, g_wan_mbps,
              g_lan_mbps, g_sim_lazy ? "lazy" : "eager",
              g_churn ? ", churn on" : "");

  // Crash the first site's seed once a third of the storm has landed, rejoin
  // it before the final event: fetchers must degrade past its stale adverts
  // and the rejoin must re-announce.
  const std::size_t crash_at = g_churn ? storm.size() / 3 + 1 : storm.size();
  const std::size_t rejoin_at = g_churn ? storm.size() - 1 : storm.size();
  std::size_t seed_site = 0;
  std::size_t seed_node = 0;
  for (const workload::StormEvent& ev : storm) {
    if (ev.site == 0 && ev.site_seed) {
      seed_site = ev.site;
      seed_node = ev.node;
      break;
    }
  }
  for (std::size_t i = 0; i < storm.size(); ++i) {
    if (i == crash_at) {
      topo.crash_node(seed_site, seed_node);
      std::printf("churn: crashed s%zu.n%zu mid-storm (adverts left stale)\n",
                  seed_site, seed_node);
    }
    if (i == rejoin_at) {
      topo.rejoin_node(seed_site, seed_node);
      std::printf("churn: rejoined s%zu.n%zu (cache re-announced)\n",
                  seed_site, seed_node);
    }
    const workload::StormEvent& ev = storm[i];
    if (g_churn && ev.site == seed_site && ev.node == seed_node &&
        i >= crash_at && i < rejoin_at) {
      continue;  // the crashed node deploys nothing while down
    }
    sim::SimClock& clock = topo.node_clock(ev.site, ev.node);
    if (clock.now() < ev.arrival_seconds) {
      clock.advance(ev.arrival_seconds - clock.now());
    }
    if (g_sim_lazy) {
      topo.deploy(ev.site, ev.node, reference, access, nullptr,
                  DeployMode::kLazy);
      topo.backfill(ev.site, ev.node, reference);
    } else {
      topo.deploy(ev.site, ev.node, reference, access);
      topo.prefetch(ev.site, ev.node, reference);
    }
  }

  for (std::size_t s = 0; s < g_sites; ++s) {
    std::printf("site %zu: wan %s, lan %s\n", s,
                format_size(topo.wan_bytes(s)).c_str(),
                format_size(topo.lan_bytes(s)).c_str());
  }
  double makespan = 0;
  for (std::size_t s = 0; s < g_sites; ++s) {
    for (std::size_t n = 0; n < g_nodes_per_site; ++n) {
      makespan = std::max(makespan, topo.node_clock(s, n).now());
    }
  }
  std::printf("totals: wan %s (cross-site peers %s), lan %s over %llu "
              "bursts, peer hits %llu (lan %llu, wan %llu), storm %s\n",
              format_size(topo.wan_bytes()).c_str(),
              format_size(topo.wan_peer_bytes()).c_str(),
              format_size(topo.lan_bytes()).c_str(),
              static_cast<unsigned long long>(topo.lan_bursts()),
              static_cast<unsigned long long>(topo.peer_hits()),
              static_cast<unsigned long long>(topo.lan_peer_hits()),
              static_cast<unsigned long long>(topo.wan_peer_hits()),
              format_duration(makespan).c_str());

  if (topo.size() > 1 && topo.peer_hits() == 0) {
    std::fprintf(stderr,
                 "gearctl: cluster-sim moved no bytes between peers on a "
                 "%zu-node topology\n",
                 topo.size());
    return 1;
  }
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: gearctl [--workers N] [--store-dir PATH] "
               "[--shards N] [--replicas R] "
               "[--range-batch N] [--prefetch-order ORDER] [--lazy] "
               "[--host-budget-bytes N] [--cache-capacity-bytes N] "
               "[--eviction fifo|lru] "
               "[--remote HOST:PORT] <store-dir> <command> [args]\n"
               "       gearctl serve --addr HOST:PORT --store-dir PATH "
               "[--shards N] [--replicas R]\n"
               "       gearctl cluster-sim [--sites N] [--nodes-per-site N] "
               "[--wan-mbps F] [--lan-mbps F] [--mode eager|lazy] [--churn]\n"
               "  --workers N      worker threads for import's fingerprinting/"
               "compression (default: one per core)\n"
               "  --store-dir PATH durable on-disk object store for the gear "
               "files (survives restarts; default: in-memory + snapshot)\n"
               "  --shards N       route the gear files over a fleet of N "
               "disk-backed registry instances (consistent-hash ring; "
               "requires --store-dir)\n"
               "  --replicas R     store every gear file on R distinct "
               "shards (default 1; must not exceed --shards)\n"
               "  --range-batch N  chunk indices per batched range request in "
               "ranged cat (default 64; 1 = serial per-chunk)\n"
               "  --lazy           launch only: print the container id as soon "
               "as the index is installed, then backfill the remaining files "
               "in --prefetch-order behind it\n"
               "  --prefetch-order path|delta|profile  queue discipline of "
               "the prefetch command (default delta)\n"
               "  --host-budget-bytes N  host-wide in-flight byte budget: "
               "every download this invocation stages acquires admission "
               "first (demand faults above prefetch; default ungoverned)\n"
               "  --cache-capacity-bytes N  disk envelope of the local "
               "runtime cache; inserts evict unlinked entries in --eviction "
               "order when it would overflow (default unbounded)\n"
               "  --eviction fifo|lru  cache eviction policy under "
               "--cache-capacity-bytes (default lru)\n"
               "  --remote HOST:PORT dial a `gearctl serve` daemon for the "
               "gear files instead of opening a local store (the docker "
               "snapshot stays under <store-dir>)\n"
               "  --addr HOST:PORT serve only: the endpoint to bind "
               "(HOST:0 = kernel-assigned port, printed on stdout)\n"
               "  --sites N / --nodes-per-site N  cluster-sim only: shape "
               "of the simulated edge topology (defaults 2 x 3)\n"
               "  --wan-mbps F / --lan-mbps F  cluster-sim only: inter-site "
               "and in-site link speeds (defaults 50 / 1000)\n"
               "  --mode eager|lazy  cluster-sim only: deploy mode of the "
               "storm (default eager)\n"
               "  --churn          cluster-sim only: crash the first site's "
               "seed mid-storm and rejoin it before the last wave\n"
               "commands: serve | cluster-sim | "
               "init | import <dir> <name:tag> [chunk-threshold] | "
               "images | inspect <ref> | cat <ref> <path> [offset length] | "
               "export <ref> <dir> | run <ref> <path...> | "
               "launch [--lazy] <ref> | "
               "read <container> <path> | write <container> <path> <text> | "
               "commit <container> <name:tag> | prefetch <ref> | rm <ref> | "
               "gc | scrub | stats\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> all(argv + 1, argv + argc);
  for (auto it = all.begin(); it != all.end();) {
    if (*it == "--workers") {
      if (std::next(it) == all.end()) {
        std::fprintf(stderr, "gearctl: --workers requires a count\n");
        return 2;
      }
      const std::string& value = *std::next(it);
      char* end = nullptr;
      unsigned long parsed = std::strtoul(value.c_str(), &end, 10);
      if (value.empty() || end == nullptr || *end != '\0') {
        std::fprintf(stderr, "gearctl: --workers expects a number, got '%s'\n",
                     value.c_str());
        return 2;
      }
      g_concurrency.workers = static_cast<std::size_t>(parsed);
      it = all.erase(it, it + 2);
    } else if (*it == "--range-batch") {
      if (std::next(it) == all.end()) {
        std::fprintf(stderr, "gearctl: --range-batch requires a count\n");
        return 2;
      }
      const std::string& value = *std::next(it);
      char* end = nullptr;
      unsigned long parsed = std::strtoul(value.c_str(), &end, 10);
      if (value.empty() || end == nullptr || *end != '\0' || parsed < 1) {
        std::fprintf(stderr,
                     "gearctl: --range-batch expects a number >= 1, got '%s'\n",
                     value.c_str());
        return 2;
      }
      g_range_batch = static_cast<std::size_t>(parsed);
      it = all.erase(it, it + 2);
    } else if (*it == "--prefetch-order") {
      if (std::next(it) == all.end()) {
        std::fprintf(stderr, "gearctl: --prefetch-order requires a value\n");
        return 2;
      }
      const std::string& value = *std::next(it);
      std::optional<PrefetchOrder> order = parse_prefetch_order(value);
      if (!order.has_value()) {
        std::fprintf(stderr,
                     "gearctl: --prefetch-order expects path, delta or "
                     "profile, got '%s'\n",
                     value.c_str());
        return 2;
      }
      g_prefetch_order = *order;
      it = all.erase(it, it + 2);
    } else if (*it == "--store-dir") {
      if (std::next(it) == all.end()) {
        std::fprintf(stderr, "gearctl: --store-dir requires a path\n");
        return 2;
      }
      const std::string& value = *std::next(it);
      if (value.empty()) {
        std::fprintf(stderr, "gearctl: --store-dir expects a non-empty path\n");
        return 2;
      }
      g_object_store_dir = value;
      it = all.erase(it, it + 2);
    } else if (*it == "--shards" || *it == "--replicas") {
      const bool is_shards = *it == "--shards";
      const char* flag = is_shards ? "--shards" : "--replicas";
      if (std::next(it) == all.end()) {
        std::fprintf(stderr, "gearctl: %s requires a count\n", flag);
        return 2;
      }
      const std::string& value = *std::next(it);
      char* end = nullptr;
      unsigned long parsed = std::strtoul(value.c_str(), &end, 10);
      if (value.empty() || end == nullptr || *end != '\0' || parsed < 1) {
        std::fprintf(stderr, "gearctl: %s expects a number >= 1, got '%s'\n",
                     flag, value.c_str());
        return 2;
      }
      (is_shards ? g_shards : g_replicas) = static_cast<std::size_t>(parsed);
      it = all.erase(it, it + 2);
    } else if (*it == "--remote" || *it == "--addr") {
      const bool is_remote = *it == "--remote";
      const char* flag = is_remote ? "--remote" : "--addr";
      if (std::next(it) == all.end()) {
        std::fprintf(stderr, "gearctl: %s requires HOST:PORT\n", flag);
        return usage();
      }
      StatusOr<net::HostPort> parsed = net::parse_host_port(*std::next(it));
      if (!parsed.ok()) {
        std::fprintf(stderr, "gearctl: %s: %s\n", flag,
                     parsed.message().c_str());
        return usage();
      }
      if (is_remote && parsed->port == 0) {
        std::fprintf(stderr, "gearctl: --remote cannot dial port 0\n");
        return usage();
      }
      (is_remote ? g_remote : g_addr) = *parsed;
      (is_remote ? g_remote_set : g_addr_set) = true;
      it = all.erase(it, it + 2);
    } else if (*it == "--host-budget-bytes" ||
               *it == "--cache-capacity-bytes") {
      const bool is_budget = *it == "--host-budget-bytes";
      const char* flag =
          is_budget ? "--host-budget-bytes" : "--cache-capacity-bytes";
      if (std::next(it) == all.end()) {
        std::fprintf(stderr, "gearctl: %s requires a byte count\n", flag);
        return 2;
      }
      const std::string& value = *std::next(it);
      char* end = nullptr;
      unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
      if (value.empty() || end == nullptr || *end != '\0' || parsed < 1) {
        std::fprintf(stderr,
                     "gearctl: %s expects a byte count >= 1, got '%s'\n",
                     flag, value.c_str());
        return 2;
      }
      (is_budget ? g_host_budget_bytes : g_cache_capacity_bytes) =
          static_cast<std::uint64_t>(parsed);
      it = all.erase(it, it + 2);
    } else if (*it == "--eviction") {
      if (std::next(it) == all.end()) {
        std::fprintf(stderr, "gearctl: --eviction requires fifo or lru\n");
        return 2;
      }
      const std::string& value = *std::next(it);
      if (value == "fifo") {
        g_eviction = EvictionPolicy::kFifo;
      } else if (value == "lru") {
        g_eviction = EvictionPolicy::kLru;
      } else {
        std::fprintf(stderr,
                     "gearctl: --eviction expects fifo or lru, got '%s'\n",
                     value.c_str());
        return 2;
      }
      it = all.erase(it, it + 2);
    } else if (*it == "--sites" || *it == "--nodes-per-site") {
      const bool is_sites = *it == "--sites";
      const char* flag = is_sites ? "--sites" : "--nodes-per-site";
      if (std::next(it) == all.end()) {
        std::fprintf(stderr, "gearctl: %s requires a count\n", flag);
        return 2;
      }
      const std::string& value = *std::next(it);
      char* end = nullptr;
      unsigned long parsed = std::strtoul(value.c_str(), &end, 10);
      if (value.empty() || end == nullptr || *end != '\0' || parsed < 1) {
        std::fprintf(stderr, "gearctl: %s expects a number >= 1, got '%s'\n",
                     flag, value.c_str());
        return 2;
      }
      (is_sites ? g_sites : g_nodes_per_site) =
          static_cast<std::size_t>(parsed);
      (is_sites ? g_sites_set : g_nodes_per_site_set) = true;
      it = all.erase(it, it + 2);
    } else if (*it == "--wan-mbps" || *it == "--lan-mbps") {
      const bool is_wan = *it == "--wan-mbps";
      const char* flag = is_wan ? "--wan-mbps" : "--lan-mbps";
      if (std::next(it) == all.end()) {
        std::fprintf(stderr, "gearctl: %s requires a link speed\n", flag);
        return 2;
      }
      const std::string& value = *std::next(it);
      char* end = nullptr;
      double parsed = std::strtod(value.c_str(), &end);
      if (value.empty() || end == nullptr || *end != '\0' || parsed <= 0 ||
          !(parsed == parsed)) {
        std::fprintf(stderr,
                     "gearctl: %s expects megabits/second > 0, got '%s'\n",
                     flag, value.c_str());
        return 2;
      }
      (is_wan ? g_wan_mbps : g_lan_mbps) = parsed;
      (is_wan ? g_wan_mbps_set : g_lan_mbps_set) = true;
      it = all.erase(it, it + 2);
    } else if (*it == "--mode") {
      if (std::next(it) == all.end()) {
        std::fprintf(stderr, "gearctl: --mode requires eager or lazy\n");
        return 2;
      }
      const std::string& value = *std::next(it);
      if (value == "eager") {
        g_sim_lazy = false;
      } else if (value == "lazy") {
        g_sim_lazy = true;
      } else {
        std::fprintf(stderr,
                     "gearctl: --mode expects eager or lazy, got '%s'\n",
                     value.c_str());
        return 2;
      }
      g_mode_set = true;
      it = all.erase(it, it + 2);
    } else if (*it == "--churn") {
      g_churn = true;
      it = all.erase(it);
    } else if (*it == "--lazy") {
      g_lazy = true;
      it = all.erase(it);
    } else {
      ++it;
    }
  }
  if (g_host_budget_bytes != 0) {
    g_host_budget = std::make_unique<HostBudget>(
        g_host_budget_bytes, AdmissionOrder::kSmallestFirst);
  }
  if (g_replicas > g_shards) {
    std::fprintf(stderr, "gearctl: --replicas %zu exceeds --shards %zu\n",
                 g_replicas, g_shards);
    return 2;
  }
  if (g_shards > 1 && g_object_store_dir.empty()) {
    std::fprintf(stderr,
                 "gearctl: --shards > 1 requires --store-dir (each shard "
                 "keeps its objects under <store-dir>/shard-<i>)\n");
    return 2;
  }

  // `cluster-sim` is a self-contained simulation: no store-dir positional,
  // no daemon — just the edge-topology knobs.
  const bool cluster_sim_cmd = !all.empty() && all[0] == "cluster-sim";
  if (!cluster_sim_cmd &&
      (g_sites_set || g_nodes_per_site_set || g_wan_mbps_set ||
       g_lan_mbps_set || g_mode_set || g_churn)) {
    std::fprintf(stderr,
                 "gearctl: --sites/--nodes-per-site/--wan-mbps/--lan-mbps/"
                 "--mode/--churn are only valid with cluster-sim\n");
    return usage();
  }
  if (cluster_sim_cmd) {
    if (all.size() != 1) {
      std::fprintf(stderr,
                   "gearctl: cluster-sim takes no positional arguments\n");
      return usage();
    }
    if (g_remote_set || g_addr_set || g_lazy || !g_object_store_dir.empty() ||
        g_shards > 1) {
      std::fprintf(stderr,
                   "gearctl: cluster-sim is incompatible with "
                   "--remote/--addr/--lazy/--store-dir/--shards\n");
      return usage();
    }
    try {
      return cmd_cluster_sim();
    } catch (const Error& e) {
      std::fprintf(stderr, "gearctl: %s\n", e.what());
      return 1;
    }
  }

  // `serve` takes no store-dir positional: the daemon owns no docker half,
  // only the object store named by --store-dir.
  if (!all.empty() && all[0] == "serve") {
    if (all.size() != 1) {
      std::fprintf(stderr, "gearctl: serve takes no positional arguments\n");
      return usage();
    }
    if (!g_addr_set) {
      std::fprintf(stderr, "gearctl: serve requires --addr HOST:PORT\n");
      return usage();
    }
    if (g_object_store_dir.empty()) {
      std::fprintf(stderr,
                   "gearctl: serve requires --store-dir (the daemon's "
                   "durable object store)\n");
      return usage();
    }
    if (g_remote_set || g_lazy) {
      std::fprintf(stderr,
                   "gearctl: serve is incompatible with --remote/--lazy\n");
      return usage();
    }
    try {
      return cmd_serve();
    } catch (const Error& e) {
      std::fprintf(stderr, "gearctl: %s\n", e.what());
      return 1;
    }
  }
  if (g_addr_set) {
    std::fprintf(stderr, "gearctl: --addr is only valid with serve\n");
    return usage();
  }
  if (g_remote_set && (!g_object_store_dir.empty() || g_shards > 1)) {
    std::fprintf(stderr,
                 "gearctl: --remote is incompatible with --store-dir/--shards "
                 "(the daemon owns the object store)\n");
    return usage();
  }

  if (all.size() < 2) return usage();
  std::string store_dir = all[0];
  std::string cmd = all[1];
  std::vector<std::string> args(all.begin() + 2, all.end());
  if (g_lazy && cmd != "launch") {
    std::fprintf(stderr, "gearctl: --lazy is only valid with launch\n");
    return 2;
  }

  try {
    Store store(store_dir, /*must_exist=*/cmd != "init");
    if (cmd == "init" && args.empty()) return cmd_init(store);
    if (cmd == "import" && (args.size() == 2 || args.size() == 3)) {
      std::uint64_t threshold =
          args.size() == 3 ? std::strtoull(args[2].c_str(), nullptr, 10) : 0;
      return cmd_import(store, args[0], args[1], threshold);
    }
    if (cmd == "images" && args.empty()) return cmd_images(store);
    if (cmd == "inspect" && args.size() == 1) return cmd_inspect(store, args[0]);
    if (cmd == "cat" && args.size() == 2) {
      return cmd_cat(store, args[0], args[1]);
    }
    if (cmd == "cat" && args.size() == 4) {
      auto parse_u64 = [](const std::string& value, std::uint64_t* out) {
        char* end = nullptr;
        *out = std::strtoull(value.c_str(), &end, 10);
        return !value.empty() && end != nullptr && *end == '\0';
      };
      std::uint64_t offset = 0;
      std::uint64_t length = 0;
      if (!parse_u64(args[2], &offset) || !parse_u64(args[3], &length) ||
          length == 0) {
        std::fprintf(stderr,
                     "gearctl: cat range expects numeric offset and a length "
                     ">= 1\n");
        return 2;
      }
      return cmd_cat_range(store, args[0], args[1], offset, length);
    }
    if (cmd == "export" && args.size() == 2) {
      return cmd_export(store, args[0], args[1]);
    }
    if (cmd == "launch" && args.size() == 1) {
      return cmd_launch(store, args[0], g_lazy);
    }
    if (cmd == "read" && args.size() == 2) {
      return cmd_exec_read(store, args[0], args[1]);
    }
    if (cmd == "write" && args.size() == 3) {
      return cmd_exec_write(store, args[0], args[1], args[2]);
    }
    if (cmd == "commit" && args.size() == 2) {
      return cmd_commit(store, args[0], args[1]);
    }
    if (cmd == "prefetch" && args.size() == 1) {
      return cmd_prefetch(store, args[0]);
    }
    if (cmd == "run" && args.size() >= 2) {
      return cmd_run(store, args[0],
                     std::vector<std::string>(args.begin() + 1, args.end()));
    }
    if (cmd == "rm" && args.size() == 1) return cmd_rm(store, args[0]);
    if (cmd == "gc" && args.empty()) return cmd_gc(store);
    if (cmd == "scrub" && args.empty()) return cmd_scrub(store);
    if (cmd == "stats" && args.empty()) return cmd_stats(store);
    return usage();
  } catch (const Error& e) {
    std::fprintf(stderr, "gearctl: %s\n", e.what());
    return 1;
  }
}
